//! Shared per-trace cost-table cache.
//!
//! Every scheduler keeps re-deriving the same quantity from the raw
//! reference strings: the axis-projected reference weights of a window
//! *range*. SCDS needs them for the merged whole execution, LOMCDS per
//! window, GOMCDS per window twice (DP forward pass and backtrack), and
//! grouping for `O(n)` different candidate ranges per greedy step. Each
//! derivation walks the `(proc, count)` lists again.
//!
//! Because the L1 cost table is separable (see [`crate::cost`]) and the
//! axis projection is *linear* in the reference counts, the projections of
//! a window range are just differences of per-window prefix sums. A
//! [`DatumCostCache`] stores, per datum:
//!
//! ```text
//! px[w][x] = Σ_{w' < w} Σ_{refs in window w' at column x} count
//! py[w][y] = …same for rows…
//! vol[w]   = Σ_{w' < w} total volume of window w'
//! ```
//!
//! built in one `O(nw·(width+height) + total refs)` pass. Afterwards the
//! cost table of *any* window range `lo..hi` costs
//! `O(width + height + m)` — independent of how many references the range
//! holds — via two subtractions per axis slot and the standard two-sweep
//! `axis_costs` recurrence in [`crate::cost`]. The arithmetic is identical to running
//! [`crate::cost::cost_table`] on the merged range, so cached and uncached
//! schedulers produce bit-identical results (property-tested in
//! `tests/cache_equivalence.rs`).

use crate::cost::{argmin_table, AxisScratch};
use pim_array::grid::{Grid, ProcId};
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowedTrace};

/// Prefix-summed axis projections of one datum's reference string.
#[derive(Debug, Clone)]
pub struct DatumCostCache {
    grid: Grid,
    num_windows: usize,
    /// `(nw+1) × width` row-major prefix sums of x-projected weights.
    px: Vec<u64>,
    /// `(nw+1) × height` row-major prefix sums of y-projected weights.
    py: Vec<u64>,
    /// `nw+1` prefix sums of window volumes.
    vol: Vec<u64>,
}

impl DatumCostCache {
    /// Build the cache for one datum in one pass over its references.
    pub fn build(grid: &Grid, rs: &DataRefString) -> Self {
        let w = grid.width() as usize;
        let h = grid.height() as usize;
        let nw = rs.num_windows();
        let mut px = vec![0u64; (nw + 1) * w];
        let mut py = vec![0u64; (nw + 1) * h];
        let mut vol = vec![0u64; nw + 1];
        for (wi, refs) in rs.windows().enumerate() {
            let (prev_x, row_x) = px[wi * w..(wi + 2) * w].split_at_mut(w);
            row_x.copy_from_slice(prev_x);
            let (prev_y, row_y) = py[wi * h..(wi + 2) * h].split_at_mut(h);
            row_y.copy_from_slice(prev_y);
            vol[wi + 1] = vol[wi];
            for r in refs.iter() {
                let p = grid.point_of(r.proc);
                row_x[p.x as usize] += r.count as u64;
                row_y[p.y as usize] += r.count as u64;
                vol[wi + 1] += r.count as u64;
            }
        }
        DatumCostCache {
            grid: *grid,
            num_windows: nw,
            px,
            py,
            vol,
        }
    }

    /// Number of execution windows the cache covers.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Total reference volume of windows `lo..hi`.
    pub fn range_volume(&self, lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi <= self.num_windows);
        self.vol[hi] - self.vol[lo]
    }

    /// True when no processor references the datum in windows `lo..hi`.
    pub fn range_is_empty(&self, lo: usize, hi: usize) -> bool {
        self.range_volume(lo, hi) == 0
    }

    /// Cost table of the merged window range `lo..hi`: writes
    /// `out[p] = cost_at(grid, merged(lo..hi), p)` for every processor in
    /// `O(width + height + m)`.
    pub fn range_table(&self, lo: usize, hi: usize, axes: &mut AxisScratch, out: &mut Vec<u64>) {
        assert!(lo <= hi && hi <= self.num_windows, "bad range {lo}..{hi}");
        let w = self.grid.width() as usize;
        let h = self.grid.height() as usize;
        axes.reset_weights(&self.grid);
        for x in 0..w {
            axes.wx[x] = self.px[hi * w + x] - self.px[lo * w + x];
        }
        for y in 0..h {
            axes.wy[y] = self.py[hi * h + y] - self.py[lo * h + y];
        }
        axes.sweep_into(&self.grid, out);
    }

    /// Cost table of a single window (`range_table(w, w+1)`).
    pub fn window_table(&self, w: usize, axes: &mut AxisScratch, out: &mut Vec<u64>) {
        self.range_table(w, w + 1, axes, out);
    }

    /// Cost table of the whole execution merged — what SCDS schedules on.
    pub fn full_table(&self, axes: &mut AxisScratch, out: &mut Vec<u64>) {
        self.range_table(0, self.num_windows, axes, out);
    }

    /// Local optimal center (lowest-id argmin) and its cost for the merged
    /// range `lo..hi`.
    pub fn optimal_center_range(
        &self,
        lo: usize,
        hi: usize,
        axes: &mut AxisScratch,
        table: &mut Vec<u64>,
    ) -> (ProcId, u64) {
        self.range_table(lo, hi, axes, table);
        argmin_table(table)
    }
}

/// Per-trace cache: one [`DatumCostCache`] per datum. Build once, share
/// across every scheduling method run on the trace (`compare_methods` does
/// exactly this).
#[derive(Debug, Clone)]
pub struct CostCache {
    data: Vec<DatumCostCache>,
}

impl CostCache {
    /// Build caches for every datum of the trace.
    pub fn build(trace: &WindowedTrace) -> Self {
        let grid = trace.grid();
        CostCache {
            data: trace
                .iter_data()
                .map(|(_, rs)| DatumCostCache::build(&grid, rs))
                .collect(),
        }
    }

    /// The cache of one datum.
    pub fn datum(&self, d: DataId) -> &DatumCostCache {
        &self.data[d.index()]
    }

    /// Number of cached data items.
    pub fn num_data(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_table, optimal_center};
    use pim_trace::window::WindowRefs;

    fn sample_rs(grid: &Grid) -> DataRefString {
        DataRefString::new(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3), (grid.proc_xy(3, 2), 1)]),
            WindowRefs::new(),
            WindowRefs::from_pairs([(grid.proc_xy(2, 1), 5)]),
            WindowRefs::from_pairs([(grid.proc_xy(1, 2), 2), (grid.proc_xy(2, 1), 1)]),
        ])
    }

    #[test]
    fn range_tables_match_merged_cost_tables() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        let cache = DatumCostCache::build(&grid, &rs);
        let mut axes = AxisScratch::default();
        let (mut cached, mut direct) = (Vec::new(), Vec::new());
        for lo in 0..rs.num_windows() {
            for hi in lo + 1..=rs.num_windows() {
                cache.range_table(lo, hi, &mut axes, &mut cached);
                cost_table(&grid, &rs.merged_range(lo, hi), &mut direct);
                assert_eq!(cached, direct, "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn empty_and_volume_queries() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        let cache = DatumCostCache::build(&grid, &rs);
        assert!(cache.range_is_empty(1, 2));
        assert!(!cache.range_is_empty(0, 2));
        assert_eq!(cache.range_volume(0, 4), rs.total_volume());
        assert_eq!(cache.range_volume(2, 3), 5);
        assert_eq!(cache.num_windows(), 4);
    }

    #[test]
    fn optimal_center_range_matches_uncached() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        let cache = DatumCostCache::build(&grid, &rs);
        let mut axes = AxisScratch::default();
        let mut table = Vec::new();
        for (lo, hi) in [(0, 1), (0, 4), (2, 4), (3, 4)] {
            let cached = cache.optimal_center_range(lo, hi, &mut axes, &mut table);
            let direct = optimal_center(&grid, &rs.merged_range(lo, hi));
            assert_eq!(cached, direct, "range {lo}..{hi}");
        }
    }

    #[test]
    fn trace_cache_indexes_by_datum() {
        let grid = Grid::new(4, 3);
        let trace = WindowedTrace::from_parts(
            grid,
            vec![
                vec![WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)])],
                vec![WindowRefs::from_pairs([(grid.proc_xy(3, 2), 7)])],
            ],
        );
        let cache = CostCache::build(&trace);
        assert_eq!(cache.num_data(), 2);
        assert_eq!(cache.datum(DataId(1)).range_volume(0, 1), 7);
    }
}
