//! Lower-bound certificates.
//!
//! GOMCDS is provably optimal per datum, but "provably" lives in the code
//! of one DP. These bounds are computed by *different, simpler* reasoning
//! and sandwich every schedule from below, giving the test suite an
//! independent certificate:
//!
//! * [`reference_lower_bound`] — movement is free, every window served
//!   from its own local optimum: no schedule (with any number of moves)
//!   can have lower *reference* cost, and since movement cost ≥ 0, no
//!   schedule can have lower total cost either.
//! * [`single_center_lower_bound`] — the SCDS optimum, which lower-bounds
//!   every *static* schedule.
//!
//! Tests assert `reference_lower_bound ≤ GOMCDS ≤ everything else`, and
//! that the bound is tight exactly when GOMCDS never pays for movement it
//! can't amortize.

use crate::cost::optimal_center;
use pim_array::grid::Grid;
use pim_trace::window::WindowedTrace;

/// Σ over data and windows of the window's minimum possible reference
/// cost. A valid lower bound on the total cost of **any single-copy**
/// schedule, movement included (movement only adds cost, and no center
/// can serve a window cheaper than the window's own optimum). Replicated
/// schedules can go below it — nearest-replica serving beats any single
/// center — which is exactly how `tests/extensions.rs` separates the two
/// regimes.
pub fn reference_lower_bound(trace: &WindowedTrace) -> u64 {
    let grid: Grid = trace.grid();
    let mut total = 0u64;
    for (_, rs) in trace.iter_data() {
        for refs in rs.windows() {
            if !refs.is_empty() {
                total += optimal_center(&grid, refs).1;
            }
        }
    }
    total
}

/// Σ over data of the merged-window optimum — the unconstrained SCDS
/// cost, which lower-bounds every static (never-moving) schedule.
pub fn single_center_lower_bound(trace: &WindowedTrace) -> u64 {
    let grid: Grid = trace.grid();
    trace
        .iter_data()
        .map(|(_, rs)| optimal_center(&grid, &rs.merged_all()).1)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::random_schedule;
    use crate::{schedule, MemoryPolicy, Method};
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn sample() -> WindowedTrace {
        let grid = Grid::new(4, 4);
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 2), (grid.proc_xy(2, 3), 1)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(1, 2), 1)]),
                    WindowRefs::new(),
                ],
            ],
        )
    }

    #[test]
    fn sandwich_holds() {
        let trace = sample();
        let lb = reference_lower_bound(&trace);
        let go = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace)
            .total();
        assert!(lb <= go, "lower bound {lb} exceeds optimum {go}");
        for m in [Method::Scds, Method::Lomcds, Method::GroupedLocal] {
            let cost = schedule(m, &trace, MemoryPolicy::Unbounded)
                .evaluate(&trace)
                .total();
            assert!(go <= cost);
        }
        // a random schedule sits far above the bound
        let rnd = random_schedule(&trace, 7).evaluate(&trace).total();
        assert!(rnd >= lb);
    }

    #[test]
    fn static_bound_is_scds() {
        let trace = sample();
        let scds = schedule(Method::Scds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace)
            .total();
        assert_eq!(single_center_lower_bound(&trace), scds);
    }

    #[test]
    fn bound_is_tight_when_movement_is_free_to_avoid() {
        let grid = Grid::new(4, 4);
        // references never change location → zero movement needed, bound
        // achieved exactly
        let win = || WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2), (grid.proc_xy(2, 1), 1)]);
        let trace = WindowedTrace::from_parts(grid, vec![vec![win(), win(), win()]]);
        let go = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace)
            .total();
        assert_eq!(go, reference_lower_bound(&trace));
    }

    #[test]
    fn empty_trace_bounds_zero() {
        let grid = Grid::new(2, 2);
        let trace = WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]]);
        assert_eq!(reference_lower_bound(&trace), 0);
        assert_eq!(single_center_lower_bound(&trace), 0);
    }
}
