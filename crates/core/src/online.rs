//! Online (streaming) data scheduling.
//!
//! The paper's schedulers are offline: the whole reference string is known
//! before execution. A run-time system often only learns each execution
//! window as it arrives. This module provides the natural online policy
//! and quantifies the price of not knowing the future:
//!
//! * every window, each datum's local optimal center is computed from the
//!   *current* window's references only;
//! * the datum moves there only when the estimated per-window saving
//!   exceeds a **hysteresis threshold** times the movement cost —
//!   `threshold = 0` moves eagerly (online LOMCDS), large thresholds never
//!   move (converging to "stay where you start").
//!
//! The `sweep_online` experiment compares the online policy across
//! thresholds against offline GOMCDS (the clairvoyant optimum) and reports
//! the competitive gap. Tests pin the basic dominance facts: online is
//! never better than offline GOMCDS, and with `threshold = 0` it matches
//! LOMCDS's reference costs window by window.

use crate::cost::{cost_at, optimal_center};
use crate::error::{ensure_feasible, exhausted, SchedError};
use crate::schedule::Schedule;
use pim_array::grid::ProcId;
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;

/// Online policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePolicy {
    /// Move only when `current_cost − best_cost > threshold × move_cost`.
    /// `0.0` moves on any strict improvement.
    pub threshold: f64,
    /// Initial placement used before anything is known (row-major datum id
    /// striping; a runtime cannot do better blind).
    pub spec: MemorySpec,
}

impl OnlinePolicy {
    /// Eager policy (move on any improvement) with the given memory spec.
    pub fn eager(spec: MemorySpec) -> Self {
        OnlinePolicy {
            threshold: 0.0,
            spec,
        }
    }
}

/// Run the online policy over a trace, revealing one window at a time.
///
/// Returns [`SchedError::CapacityExhausted`] when the array cannot hold
/// every datum.
pub fn online_schedule(
    trace: &WindowedTrace,
    policy: OnlinePolicy,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    ensure_feasible(&grid, policy.spec, nd)?;
    let m = grid.num_procs() as u32;

    // Blind initial placement: stripe data over processors by id.
    let mut current: Vec<ProcId> = (0..nd).map(|d| ProcId(d as u32 % m)).collect();
    let mut centers = vec![vec![ProcId(0); nw]; nd];

    for w in 0..nw {
        let mut mem = MemoryMap::new(&grid, policy.spec);
        for d in 0..nd {
            let refs = trace.refs(DataId(d as u32)).window(w);
            let here = current[d];
            let target = if refs.is_empty() {
                here
            } else {
                let (best, best_cost) = optimal_center(&grid, refs);
                let here_cost = cost_at(&grid, refs, here);
                let move_cost = grid.dist(here, best) as f64;
                if here_cost > best_cost
                    && (here_cost - best_cost) as f64 > policy.threshold * move_cost
                {
                    best
                } else {
                    here
                }
            };
            // capacity: prefer the target, fall back toward it by distance
            let placed = if mem.has_room(target) {
                target
            } else {
                let t = grid.point_of(target);
                grid.procs()
                    .filter(|&p| mem.has_room(p))
                    .min_by_key(|&p| (grid.point_of(p).l1_dist(t), p.0))
                    .ok_or_else(|| exhausted(DataId(d as u32), Some(w)))?
            };
            mem.allocate(placed)
                .map_err(|_| exhausted(DataId(d as u32), Some(w)))?;
            centers[d][w] = placed;
            current[d] = placed;
        }
    }
    Ok(Schedule::new(grid, centers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gomcds::gomcds_schedule;
    use pim_array::grid::Grid;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn grid() -> Grid {
        Grid::new(4, 4)
    }

    fn drifting_trace() -> WindowedTrace {
        let g = grid();
        WindowedTrace::from_parts(
            g,
            vec![vec![
                WindowRefs::from_pairs([(g.proc_xy(0, 0), 4)]),
                WindowRefs::from_pairs([(g.proc_xy(1, 1), 4)]),
                WindowRefs::from_pairs([(g.proc_xy(2, 2), 4)]),
                WindowRefs::from_pairs([(g.proc_xy(3, 3), 4)]),
            ]],
        )
    }

    #[test]
    fn online_never_beats_offline_gomcds() {
        let t = drifting_trace();
        let offline = gomcds_schedule(&t, MemorySpec::unbounded())
            .evaluate(&t)
            .total();
        for threshold in [0.0, 0.5, 1.0, 4.0, 100.0] {
            let s = online_schedule(
                &t,
                OnlinePolicy {
                    threshold,
                    spec: MemorySpec::unbounded(),
                },
            )
            .unwrap();
            assert!(
                s.evaluate(&t).total() >= offline,
                "threshold {threshold}: online beat the clairvoyant optimum"
            );
        }
    }

    #[test]
    fn eager_policy_chases_the_hot_spot() {
        let t = drifting_trace();
        let s = online_schedule(&t, OnlinePolicy::eager(MemorySpec::unbounded())).unwrap();
        let g = grid();
        // once it catches up, it sits exactly on each hot processor
        assert_eq!(s.center(DataId(0), 1), g.proc_xy(1, 1));
        assert_eq!(s.center(DataId(0), 3), g.proc_xy(3, 3));
        // reference cost is zero from window 1 on (it moved there)
        let cost = s.evaluate(&t);
        assert!(cost.movement > 0);
    }

    #[test]
    fn infinite_threshold_never_moves_after_start() {
        let t = drifting_trace();
        let s = online_schedule(
            &t,
            OnlinePolicy {
                threshold: 1e12,
                spec: MemorySpec::unbounded(),
            },
        )
        .unwrap();
        assert!(!s.has_movement());
    }

    #[test]
    fn respects_capacity() {
        let g = grid();
        let want = |p| {
            vec![
                WindowRefs::from_pairs([(p, 2)]),
                WindowRefs::from_pairs([(p, 2)]),
            ]
        };
        let t = WindowedTrace::from_parts(g, vec![want(g.proc_xy(2, 2)), want(g.proc_xy(2, 2))]);
        let s = online_schedule(&t, OnlinePolicy::eager(MemorySpec::uniform(1))).unwrap();
        assert_eq!(s.max_occupancy(), 1);
    }

    #[test]
    fn deterministic() {
        let t = drifting_trace();
        let a = online_schedule(&t, OnlinePolicy::eager(MemorySpec::unbounded())).unwrap();
        let b = online_schedule(&t, OnlinePolicy::eager(MemorySpec::unbounded())).unwrap();
        assert_eq!(a, b);
    }
}
