//! Out-of-core scheduling: walk a `.pimb` binary trace in bounded chunks.
//!
//! [`crate::flat`] needs the whole CSR resident (owned or mapped); this
//! module schedules a trace whose refs never fit — or should never sit —
//! in memory. [`stream_schedule`] walks the datum-major CSR of a
//! [`pim_trace::binfmt`] file in contiguous datum chunks:
//!
//! * a dedicated I/O thread reads and decodes chunk `k + 1` while the
//!   worker pool schedules chunk `k` (double-buffered: exactly two chunk
//!   buffers cycle between the reader and the scheduler, so peak memory is
//!   the offsets array plus two chunks, independent of trace size);
//! * within a chunk, the pure per-datum phase (merged medians for SCDS,
//!   per-window median sweeps for LOMCDS, layered shortest paths for
//!   GOMCDS) is sharded over the [`pim_par`] pool exactly as the
//!   in-memory path shards the whole trace;
//! * the sequential capacity replay runs between chunks in ascending datum
//!   order against persistent [`pim_array::memory::MemoryMap`] state —
//!   the same `ScdsReplay` object (private to [`crate::flat`]) the
//!   in-memory path uses —
//!   so bounded SCDS stays **bit-identical** to [`crate::flat::flat_scds`].
//!
//! Chunking is possible exactly when every scheduling decision depends
//! only on (a) the datum's own span and (b) state accumulated over lower
//! datum ids. That covers SCDS under every policy and LOMCDS/GOMCDS with
//! unbounded memory (pure per-datum). Bounded LOMCDS/GOMCDS replay
//! *window-major across all data* — window 0 of the last datum is decided
//! before window 1 of the first — so no datum-ordered pass can reproduce
//! them; those combinations return [`StreamError::Unsupported`] and
//! callers fall back to the in-memory/mapped [`crate::flat`] path.
//!
//! Schedules at this scale are also too big to keep: 10M data × 32
//! windows of centers is more memory than the chunks saved. The pipeline
//! therefore folds each datum's center row into the exact
//! [`crate::flat::flat_total_cost`] accumulation (and hands it to an
//! optional per-datum sink) instead of materializing a
//! [`crate::schedule::Schedule`].
//!
//! Everything read from the file is validated before use — header, CSR
//! offsets, and each chunk's spans (bounds, ordering) — and the running
//! payload checksum is verified once the last chunk has been read, so a
//! corrupt file always surfaces as a typed error by the time
//! [`stream_schedule`] returns.

use crate::cache::DatumCostCache;
use crate::error::{ensure_feasible, SchedError};
use crate::flat::{span_lomcds_centers, span_merged_median, FlatScratch, ScdsReplay};
use crate::gomcds::{gomcds_path_cached, Solver};
use crate::pipeline::{MemoryPolicy, Method};
use crate::schedule::CostBreakdown;
use crate::workspace::Workspace;
use pim_array::grid::{Grid, ProcId};
use pim_par::Pool;
use pim_trace::binfmt::{
    decode_offsets, decode_refs, validate_offsets, validate_span, BinError, Checksum, Header,
    HEADER_LEN, OFFSET_BYTES, REF_BYTES,
};
use pim_trace::flat::FlatRef;
use pim_trace::ids::DataId;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::mpsc::{Receiver, Sender, SyncSender};

/// Tuning knobs for the out-of-core walk.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamConfig {
    /// Data per chunk; `0` picks [`StreamConfig::AUTO_CHUNK_DATA`].
    pub chunk_data: usize,
}

impl StreamConfig {
    /// Default chunk granularity: 256k data per chunk keeps two decoded
    /// chunk buffers around tens of MB at typical reference densities
    /// while amortizing thread handoff over plenty of scheduling work.
    pub const AUTO_CHUNK_DATA: usize = 256 * 1024;

    fn resolved_chunk(&self) -> usize {
        if self.chunk_data == 0 {
            Self::AUTO_CHUNK_DATA
        } else {
            self.chunk_data
        }
    }
}

/// Why an out-of-core run failed.
#[derive(Debug)]
pub enum StreamError {
    /// The binary container could not be read or failed validation.
    Bin(BinError),
    /// Scheduling itself failed (infeasible policy, capacity exhausted).
    Sched(SchedError),
    /// The method × policy combination needs window-major replay across
    /// all data and cannot be chunk-streamed; use the in-memory or
    /// memory-mapped [`crate::flat`] path instead.
    Unsupported {
        /// The requested method.
        method: Method,
    },
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamError::Bin(e) => write!(f, "{e}"),
            StreamError::Sched(e) => write!(f, "{e}"),
            StreamError::Unsupported { method } => write!(
                f,
                "{method} with bounded memory replays window-major and cannot be \
                 chunk-streamed; schedule it via the in-memory flat path"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<BinError> for StreamError {
    fn from(e: BinError) -> Self {
        StreamError::Bin(e)
    }
}

impl From<SchedError> for StreamError {
    fn from(e: SchedError) -> Self {
        StreamError::Sched(e)
    }
}

/// What a completed out-of-core run produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Total schedule cost, bit-identical to evaluating the equivalent
    /// in-memory schedule with [`crate::flat::flat_total_cost`].
    pub cost: CostBreakdown,
    /// Data scheduled.
    pub num_data: usize,
    /// Aggregated reference records consumed.
    pub num_refs: usize,
    /// Chunks the trace was walked in.
    pub num_chunks: usize,
}

enum Msg {
    Chunk { idx: usize, refs: Vec<FlatRef> },
    Fail(std::io::Error),
    Done { checksum: u64 },
}

/// Double-buffered chunk reader over the refs region of a `.pimb` file.
///
/// `open` reads and validates the header and the whole offsets array
/// (the only per-trace state kept resident: 8 bytes per datum), then a
/// spawned I/O thread reads, checksums and decodes ref chunks ahead of
/// the consumer.
struct ChunkReader {
    header: Header,
    offsets: Vec<u64>,
    /// Datum ranges `[d0, d1)` of each chunk, covering `0..num_data`.
    bounds: Vec<(usize, usize)>,
    next: usize,
    rx: Receiver<Msg>,
    free_tx: Sender<Vec<FlatRef>>,
    done: bool,
}

impl ChunkReader {
    fn open(path: &Path, chunk_data: usize) -> Result<ChunkReader, StreamError> {
        let mut file = std::fs::File::open(path).map_err(BinError::Io)?;
        let file_len = file.metadata().map_err(BinError::Io)?.len();
        let mut head = [0u8; HEADER_LEN];
        if file_len < HEADER_LEN as u64 {
            return Err(BinError::Length {
                expected: HEADER_LEN as u64,
                actual: file_len,
            }
            .into());
        }
        file.read_exact(&mut head).map_err(BinError::Io)?;
        let header = Header::parse(&head)?;
        if file_len != header.total_len() {
            return Err(BinError::Length {
                expected: header.total_len(),
                actual: file_len,
            }
            .into());
        }

        // Offsets: streamed in bounded pieces, folded into the running
        // payload checksum, decoded to one u64 per datum.
        let mut sum = Checksum::new();
        let mut offsets: Vec<u64> = Vec::with_capacity(header.num_data + 1);
        let mut remaining = header.offsets_bytes();
        let mut buf = vec![0u8; (4 << 20).min(remaining.max(OFFSET_BYTES))];
        while remaining > 0 {
            let take = buf.len().min(remaining);
            // keep 8-byte boundaries for checksum/decode
            let take = take - (take % OFFSET_BYTES);
            file.read_exact(&mut buf[..take]).map_err(BinError::Io)?;
            sum.update(&buf[..take]);
            decode_offsets(&buf[..take], &mut offsets);
            remaining -= take;
        }
        validate_offsets(&offsets, header.num_refs as u64)?;

        let bounds: Vec<(usize, usize)> = (0..header.num_data)
            .step_by(chunk_data.max(1))
            .map(|d0| (d0, (d0 + chunk_data.max(1)).min(header.num_data)))
            .collect();

        // Two chunk buffers cycle between reader and consumer: the I/O
        // thread fills k + 1 while the pool schedules k.
        let (full_tx, rx) = std::sync::mpsc::sync_channel::<Msg>(2);
        let (free_tx, free_rx) = std::sync::mpsc::channel::<Vec<FlatRef>>();
        for _ in 0..2 {
            let _ = free_tx.send(Vec::new());
        }
        let refs_base = HEADER_LEN as u64 + header.offsets_bytes() as u64;
        let ranges: Vec<(u64, u64)> = bounds
            .iter()
            .map(|&(d0, d1)| (offsets[d0], offsets[d1]))
            .collect();
        std::thread::spawn(move || read_loop(file, refs_base, ranges, sum, free_rx, full_tx));

        Ok(ChunkReader {
            header,
            offsets,
            bounds,
            next: 0,
            rx,
            free_tx,
            done: false,
        })
    }

    /// The next chunk's datum range and decoded refs, or `None` once the
    /// whole trace has been served *and* the payload checksum verified.
    fn next_chunk(&mut self) -> Result<Option<(usize, usize, Vec<FlatRef>)>, StreamError> {
        if self.done {
            return Ok(None);
        }
        if self.next == self.bounds.len() {
            self.done = true;
            return match self.rx.recv() {
                Ok(Msg::Done { checksum }) if checksum == self.header.checksum => Ok(None),
                Ok(Msg::Done { checksum }) => Err(BinError::Checksum {
                    expected: self.header.checksum,
                    actual: checksum,
                }
                .into()),
                Ok(Msg::Fail(e)) => Err(BinError::Io(e).into()),
                Ok(Msg::Chunk { .. }) | Err(_) => {
                    Err(BinError::Io(std::io::Error::other("trace reader thread died")).into())
                }
            };
        }
        match self.rx.recv() {
            Ok(Msg::Chunk { idx, refs }) => {
                debug_assert_eq!(idx, self.next);
                let (d0, d1) = self.bounds[self.next];
                self.next += 1;
                Ok(Some((d0, d1, refs)))
            }
            Ok(Msg::Fail(e)) => Err(BinError::Io(e).into()),
            Ok(Msg::Done { .. }) | Err(_) => {
                Err(BinError::Io(std::io::Error::other("trace reader thread died")).into())
            }
        }
    }

    /// Hand a drained chunk buffer back for reuse.
    fn recycle(&mut self, refs: Vec<FlatRef>) {
        let _ = self.free_tx.send(refs);
    }
}

/// Body of the I/O thread: for each chunk's ref range, wait for a free
/// buffer, read + checksum + decode, and send it on. Exits silently when
/// the consumer hangs up (early error or drop on the main side).
fn read_loop(
    mut file: std::fs::File,
    refs_base: u64,
    ranges: Vec<(u64, u64)>,
    mut sum: Checksum,
    free_rx: Receiver<Vec<FlatRef>>,
    tx: SyncSender<Msg>,
) {
    let mut raw: Vec<u8> = Vec::new();
    for (idx, &(r0, r1)) in ranges.iter().enumerate() {
        let Ok(mut refs) = free_rx.recv() else { return };
        refs.clear();
        raw.resize((r1 - r0) as usize * REF_BYTES, 0);
        let io = file
            .seek(SeekFrom::Start(refs_base + r0 * REF_BYTES as u64))
            .and_then(|_| file.read_exact(&mut raw));
        if let Err(e) = io {
            let _ = tx.send(Msg::Fail(e));
            return;
        }
        sum.update(&raw);
        decode_refs(&raw, &mut refs);
        if tx.send(Msg::Chunk { idx, refs }).is_err() {
            return;
        }
    }
    let _ = tx.send(Msg::Done {
        checksum: sum.finish(),
    });
}

/// Span lookup within one resident chunk.
struct ChunkSpans<'a> {
    d0: usize,
    base: u64,
    offsets: &'a [u64],
    refs: &'a [FlatRef],
}

impl ChunkSpans<'_> {
    fn span(&self, d: DataId) -> &[FlatRef] {
        let i = d.index() - self.d0;
        let lo = (self.offsets[i] - self.base) as usize;
        let hi = (self.offsets[i + 1] - self.base) as usize;
        &self.refs[lo..hi]
    }
}

/// Fold one datum's center row into the running cost, with exactly the
/// arithmetic (and datum-ascending order) of
/// [`crate::flat::flat_total_cost`].
fn accumulate_cost(grid: &Grid, span: &[FlatRef], centers: &[ProcId], cost: &mut CostBreakdown) {
    for r in span {
        let c = grid.point_of(centers[r.window as usize]);
        let dist =
            (r.x as i64 - c.x as i64).unsigned_abs() + (r.y as i64 - c.y as i64).unsigned_abs();
        cost.reference += r.count as u64 * dist;
    }
    for pair in centers.windows(2) {
        cost.movement += grid.dist(pair[0], pair[1]);
    }
}

/// Schedule the binary trace at `path` out-of-core, discarding placements
/// after costing them. See [`stream_schedule_with`] for the sink variant
/// and the module docs for the supported method × policy matrix.
pub fn stream_schedule(
    path: impl AsRef<Path>,
    method: Method,
    policy: MemoryPolicy,
    pool: Pool,
    config: StreamConfig,
) -> Result<StreamOutcome, StreamError> {
    stream_schedule_with(path, method, policy, pool, config, |_, _| {})
}

/// [`stream_schedule`] with a per-datum sink: `sink(d, centers)` receives
/// every datum's final center row (one entry per window) in ascending
/// datum order, before the row is discarded. The rows are exactly the
/// [`Schedule`](crate::schedule::Schedule) rows the in-memory path would
/// materialize, which is how tests and the parity smoke compare the two
/// pipelines without holding a full schedule.
pub fn stream_schedule_with(
    path: impl AsRef<Path>,
    method: Method,
    policy: MemoryPolicy,
    pool: Pool,
    config: StreamConfig,
    mut sink: impl FnMut(DataId, &[ProcId]),
) -> Result<StreamOutcome, StreamError> {
    match method {
        Method::Scds => {}
        Method::Lomcds | Method::Gomcds => {
            // Bounded multi-center replay is window-major across all data
            // (see module docs) — not expressible as a datum-ordered walk.
            if !matches!(policy, MemoryPolicy::Unbounded) {
                return Err(StreamError::Unsupported { method });
            }
        }
        _ => return Err(StreamError::Unsupported { method }),
    }

    let mut reader = ChunkReader::open(path.as_ref(), config.resolved_chunk())?;
    let header = reader.header;
    let grid = header.grid;
    let nd = header.num_data;
    let nw = header.num_windows;
    let spec = policy.resolve_parts(&grid, nd);
    ensure_feasible(&grid, spec, nd).map_err(StreamError::Sched)?;

    let mut replay = ScdsReplay::new(&grid, spec);
    let mut cost = CostBreakdown::default();
    let mut row = vec![ProcId(0); nw];
    let mut ids: Vec<DataId> = Vec::new();
    let mut num_chunks = 0usize;

    while let Some((d0, d1, refs)) = reader.next_chunk()? {
        num_chunks += 1;
        let spans = ChunkSpans {
            d0,
            base: reader.offsets[d0],
            offsets: &reader.offsets[d0..=d1],
            refs: &refs,
        };
        ids.clear();
        ids.extend((d0 as u32..d1 as u32).map(DataId));
        for &d in &ids {
            validate_span(&grid, nw, spans.span(d))?;
        }
        let chunk = pim_par::auto_chunk(ids.len(), pool.threads());
        match method {
            Method::Scds => {
                let medians = pim_par::parallel_map_with_chunked(
                    pool,
                    &ids,
                    chunk,
                    FlatScratch::default,
                    |s, _, &d| span_merged_median(&grid, spans.span(d), &mut s.med),
                );
                for (&d, &c) in ids.iter().zip(&medians) {
                    let span = spans.span(d);
                    let p = replay.place(&grid, d, span, c)?;
                    row.fill(p);
                    accumulate_cost(&grid, span, &row, &mut cost);
                    sink(d, &row);
                }
            }
            Method::Lomcds => {
                let rows = pim_par::parallel_map_with_chunked(
                    pool,
                    &ids,
                    chunk,
                    FlatScratch::default,
                    |s, _, &d| span_lomcds_centers(&grid, spans.span(d), nw, &mut s.med),
                );
                for (&d, r) in ids.iter().zip(&rows) {
                    accumulate_cost(&grid, spans.span(d), r, &mut cost);
                    sink(d, r);
                }
            }
            Method::Gomcds => {
                let rows = pim_par::parallel_map_with_chunked(
                    pool,
                    &ids,
                    chunk,
                    Workspace::new,
                    |ws, _, &d| {
                        let cache = DatumCostCache::build_flat(&grid, spans.span(d), nw);
                        gomcds_path_cached(&grid, &cache, Solver::DistanceTransform, ws).0
                    },
                );
                for (&d, r) in ids.iter().zip(&rows) {
                    accumulate_cost(&grid, spans.span(d), r, &mut cost);
                    sink(d, r);
                }
            }
            _ => unreachable!("rejected above"),
        }
        reader.recycle(refs);
    }

    Ok(StreamOutcome {
        cost,
        num_data: nd,
        num_refs: header.num_refs,
        num_chunks,
    })
}

/// Convenience: stream-schedule and return only the total cost, for
/// parity checks against `flat_total_cost(flat, &schedule)`.
pub fn stream_total_cost(
    path: impl AsRef<Path>,
    method: Method,
    policy: MemoryPolicy,
    pool: Pool,
    config: StreamConfig,
) -> Result<CostBreakdown, StreamError> {
    Ok(stream_schedule(path, method, policy, pool, config)?.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{flat_gomcds, flat_lomcds, flat_scds, flat_total_cost};
    use crate::schedule::Schedule;
    use pim_array::grid::ProcId as P;
    use pim_trace::flat::{FlatRecord, FlatTrace};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "pim-stream-test-{}-{}-{tag}.pimb",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// A deterministic irregular trace: ~3 refs per datum with clustered
    /// processors, some data untouched.
    fn synthetic(grid: Grid, nw: usize, nd: usize) -> FlatTrace {
        let mut state = 0x1998_c0de_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut records = Vec::new();
        for d in 0..nd as u32 {
            if d % 17 == 3 {
                continue; // leave some data unreferenced
            }
            let n = 1 + (rng() % 5) as usize;
            for _ in 0..n {
                records.push(FlatRecord {
                    datum: DataId(d),
                    window: (rng() % nw as u64) as u32,
                    proc: P((rng() % grid.num_procs() as u64) as u32),
                    count: 1 + (rng() % 7) as u32,
                });
            }
        }
        FlatTrace::from_records(grid, nw, nd, records).unwrap()
    }

    fn collect_stream(
        path: &Path,
        method: Method,
        policy: MemoryPolicy,
        chunk_data: usize,
    ) -> (Schedule, StreamOutcome) {
        let grid;
        let nw;
        {
            let bin = pim_trace::binfmt::BinTrace::open(path).unwrap();
            grid = bin.header().grid;
            nw = bin.header().num_windows;
        }
        let mut rows: Vec<Vec<ProcId>> = Vec::new();
        let out = stream_schedule_with(
            path,
            method,
            policy,
            Pool::with_threads(2),
            StreamConfig { chunk_data },
            |d, centers| {
                assert_eq!(d.index(), rows.len(), "sink order is datum-ascending");
                assert_eq!(centers.len(), nw);
                rows.push(centers.to_vec());
            },
        )
        .unwrap();
        (Schedule::new(grid, rows), out)
    }

    #[test]
    fn stream_matches_in_memory_across_methods_and_chunks() {
        let grid = Grid::new(5, 4);
        let flat = synthetic(grid, 6, 257);
        let path = temp_path("parity");
        pim_trace::binfmt::pack_file(&flat, &path).unwrap();
        let pool = Pool::with_threads(2);

        for chunk_data in [1usize, 7, 64, 1000] {
            for (method, policy) in [
                (Method::Scds, MemoryPolicy::Unbounded),
                (Method::Scds, MemoryPolicy::ScaledMinimum { factor: 2 }),
                (Method::Lomcds, MemoryPolicy::Unbounded),
                (Method::Gomcds, MemoryPolicy::Unbounded),
            ] {
                let expect = match method {
                    Method::Scds => flat_scds(&flat, policy, pool).unwrap(),
                    Method::Lomcds => flat_lomcds(&flat, policy, pool).unwrap(),
                    Method::Gomcds => flat_gomcds(&flat, policy, pool).unwrap(),
                    _ => unreachable!(),
                };
                let (got, out) = collect_stream(&path, method, policy, chunk_data);
                assert_eq!(got, expect, "{method} {policy:?} chunk={chunk_data}");
                assert_eq!(
                    out.cost,
                    flat_total_cost(&flat, &expect),
                    "{method} {policy:?} chunk={chunk_data} cost"
                );
                assert_eq!(out.num_data, flat.num_data());
                assert_eq!(out.num_refs, flat.num_refs());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bounded_scds_capacity_fallback_is_bit_identical() {
        // Tight capacity forces the spill path (full processor list) for
        // many data; the replay must still match in any chunking.
        let grid = Grid::new(3, 3);
        let flat = synthetic(grid, 4, 40);
        let path = temp_path("cap1");
        pim_trace::binfmt::pack_file(&flat, &path).unwrap();
        let pool = Pool::with_threads(2);
        let policy = MemoryPolicy::Capacity(5);
        let expect = flat_scds(&flat, policy, pool).unwrap();
        for chunk_data in [1usize, 3, 100] {
            let (got, out) = collect_stream(&path, Method::Scds, policy, chunk_data);
            assert_eq!(got, expect, "chunk={chunk_data}");
            assert_eq!(out.cost, flat_total_cost(&flat, &expect));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bounded_multicenter_is_typed_unsupported() {
        let grid = Grid::new(3, 3);
        let flat = synthetic(grid, 3, 20);
        let path = temp_path("unsup");
        pim_trace::binfmt::pack_file(&flat, &path).unwrap();
        let pool = Pool::serial();
        for method in [Method::Lomcds, Method::Gomcds, Method::GroupedLocal] {
            let err = stream_schedule(
                &path,
                method,
                MemoryPolicy::Capacity(3),
                pool,
                StreamConfig::default(),
            )
            .unwrap_err();
            assert!(matches!(err, StreamError::Unsupported { .. }), "{method}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_errors_are_typed() {
        let grid = Grid::new(3, 3);
        let flat = synthetic(grid, 3, 50);
        let path = temp_path("corrupt");
        let mut bytes = pim_trace::binfmt::encode_flat(&flat);
        let pool = Pool::serial();

        // corrupt a payload byte deep in the refs region: the run only
        // fails once the checksum is verified, but it *does* fail.
        let at = bytes.len() - 5;
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = stream_schedule(
            &path,
            Method::Scds,
            MemoryPolicy::Unbounded,
            pool,
            StreamConfig { chunk_data: 8 },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::Bin(BinError::Checksum { .. })
                    | StreamError::Bin(BinError::Corrupt(_))
            ),
            "{err:?}"
        );

        // truncated mid-refs: typed length error before any scheduling
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes[..bytes.len() - REF_BYTES]).unwrap();
        let err = stream_schedule(
            &path,
            Method::Scds,
            MemoryPolicy::Unbounded,
            pool,
            StreamConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::Bin(BinError::Length { .. })));

        // capacity exhaustion surfaces the scheduling error
        std::fs::write(&path, &bytes).unwrap();
        let err = stream_schedule(
            &path,
            Method::Scds,
            MemoryPolicy::Capacity(1),
            pool,
            StreamConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::Sched(_)));

        std::fs::remove_file(&path).ok();
        assert!(matches!(
            stream_schedule(
                &path,
                Method::Scds,
                MemoryPolicy::Unbounded,
                pool,
                StreamConfig::default()
            ),
            Err(StreamError::Bin(BinError::Io(_)))
        ));
    }

    #[test]
    fn empty_and_tiny_traces_stream() {
        let grid = Grid::new(2, 2);
        let flat = FlatTrace::from_records(grid, 2, 0, vec![]).unwrap();
        let path = temp_path("empty");
        pim_trace::binfmt::pack_file(&flat, &path).unwrap();
        let out = stream_schedule(
            &path,
            Method::Scds,
            MemoryPolicy::Unbounded,
            Pool::serial(),
            StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(out.num_data, 0);
        assert_eq!(out.cost, CostBreakdown::default());
        std::fs::remove_file(&path).ok();
    }
}
