//! Reusable scheduling workspace.
//!
//! Every scheduler in this crate needs the same small set of scratch
//! buffers: axis projections and sweep rows for cost tables
//! ([`crate::cost::AxisScratch`]), a cost-table output row, and the GOMCDS
//! layered-DP rows (`dp`, the current window's node costs, and the
//! distance-transform relaxation row). A [`Workspace`] bundles all of them
//! so a caller — or a long-lived worker thread in `pim-par`'s pool — can
//! allocate once and schedule many data with zero per-datum allocation.
//!
//! All buffers are plain `Vec`s that grow to the grid/trace size on first
//! use and are cleared (never shrunk) between uses, so contents never leak
//! between data: every fill path writes the full live region first.

use crate::cost::AxisScratch;
use pim_array::grid::ProcId;
use pim_metrics::Metrics;

/// Bundled scratch buffers for the hot scheduling path. Construct once per
/// thread and pass to the `*_cached` scheduler entry points.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Metrics sink the `*_cached` capacity loops record placements into.
    /// Disabled (a no-op) by default; [`crate::SchedContext::with_metrics`]
    /// installs an enabled handle.
    pub(crate) metrics: Metrics,
    /// Axis-projection and sweep buffers for separable cost tables.
    pub(crate) axes: AxisScratch,
    /// General cost-table output row (`m` entries).
    pub(crate) table: Vec<u64>,
    /// GOMCDS layered-DP rows, flattened `[w * m + k]`.
    pub(crate) dp: Vec<u64>,
    /// Node costs of the window currently being expanded.
    pub(crate) node: Vec<u64>,
    /// Distance-transform relaxation of the previous DP row.
    pub(crate) relaxed: Vec<u64>,
    /// Memoized node-cost rows of every layer, flattened `[w * m + k]`,
    /// filled during the GOMCDS forward pass so the backtrack never
    /// re-derives them.
    pub(crate) nodes_all: Vec<u64>,
    /// Incremental greedy grouping: per-window singleton optimal centers.
    pub(crate) win_centers: Vec<ProcId>,
    /// Incremental greedy grouping: per-window singleton optimal costs.
    pub(crate) win_costs: Vec<u64>,
    /// Incremental greedy grouping: `next_ref[j]` = first referenced
    /// window `≥ j` (`n` when none); `n + 1` entries.
    pub(crate) next_ref: Vec<usize>,
    /// Incremental greedy grouping: `tail[j]` = cost of scheduling windows
    /// `j..n` as singleton groups; `n + 1` entries.
    pub(crate) tail: Vec<u64>,
    /// Incremental GOMCDS-centre grouping: backward suffix DP, flattened
    /// `[(n + 1) layers × m]`.
    pub(crate) suffix_dp: Vec<u64>,
    /// Incremental GOMCDS-centre grouping: forward DP row of the group
    /// currently being grown.
    pub(crate) fwd: Vec<u64>,
    /// Incremental GOMCDS-centre grouping: forward DP row of the candidate
    /// extension (also reused as a sum scratch by the suffix pass).
    pub(crate) fwd_ext: Vec<u64>,
    /// Incremental GOMCDS-centre grouping: relaxation of the DP row after
    /// the last confirmed group.
    pub(crate) relaxed_prefix: Vec<u64>,
}

impl Workspace {
    /// A fresh workspace. Buffers grow lazily to the sizes the first
    /// scheduled trace needs.
    pub fn new() -> Self {
        Workspace::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_starts_empty() {
        let ws = Workspace::new();
        assert!(ws.table.is_empty());
        assert!(ws.dp.is_empty());
    }
}
