//! Execution-window grouping (paper Section 4, Algorithm 3).
//!
//! If a datum's references barely change across consecutive windows, moving
//! it per window wastes traffic; merging those windows and re-centering
//! once can reduce total cost. Algorithm 3 is a greedy scan: keep extending
//! the current group with the next window as long as the total cost of the
//! resulting window set (reference traffic at each group's center plus
//! movement between group centers) does not increase; otherwise cut and
//! start a new group.
//!
//! The paper's Theorem 3 bounds what grouping can do — merging *two*
//! windows whose local optimal centers are the closest pair cannot reduce
//! cost — so the wins come from longer runs and from interaction with
//! movement cost; see [`crate::theory`].
//!
//! The greedy's extension decisions are evaluated **incrementally**: both
//! candidate partitions at a step share their confirmed prefix and their
//! singleton suffix, so [`greedy_grouping_cached`] precomputes the suffix
//! once, carries the prefix forward, and pays one cache range query per
//! step — `O(n)` group evaluations total instead of the literal
//! re-costing's `O(n²)` (kept as [`greedy_grouping_oracle`]).
//!
//! Besides the greedy (the paper's algorithm), [`optimal_grouping`] solves
//! the same problem exactly by dynamic programming over group boundaries —
//! `O(t²)` transitions via a per-boundary distance transform
//! ([`optimal_grouping_cached`]; the literal `O(t³)` scan survives as
//! [`optimal_grouping_oracle`]) — used by ablation E to measure the
//! greedy's optimality gap.

use crate::cache::{CostCache, DatumCostCache};
use crate::cost::{cost_at, optimal_center, INF};
use crate::error::{ensure_feasible, exhausted, SchedError};
use crate::gomcds::{gomcds_path, gomcds_path_ranges, Solver};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use core::ops::Range;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowRefs, WindowedTrace};
use serde::{Deserialize, Serialize};

/// How centers are computed for a grouped window set when costing a
/// grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupMethod {
    /// Each group's center is the local optimal center of its merged
    /// references (what Table 2 of the paper uses: "Algorithm 3 assuming
    /// using LOMCDS to compute centers").
    LocalCenters,
    /// Centers across groups chosen by the GOMCDS shortest path over the
    /// grouped windows.
    GomcdsCenters,
}

/// The local-center sequence for a grouping: each group's optimal center of
/// merged refs; empty groups keep the previous group's center (leading
/// empties take the first known center; all-empty defaults to `P0`).
pub fn local_group_centers(
    grid: &Grid,
    rs: &DataRefString,
    groups: &[Range<usize>],
) -> Vec<ProcId> {
    let mut centers: Vec<Option<ProcId>> = groups
        .iter()
        .map(|g| {
            let merged = rs.merged_range(g.start, g.end);
            (!merged.is_empty()).then(|| optimal_center(grid, &merged).0)
        })
        .collect();
    crate::lomcds::resolve_gaps_pub(&mut centers);
    centers
        .into_iter()
        .map(|c| c.unwrap_or(ProcId(0)))
        .collect()
}

/// [`local_group_centers`] served from the datum's cost cache: each group's
/// merged table comes from prefix-sum range queries instead of re-merging
/// reference lists.
pub fn local_group_centers_cached(
    cache: &DatumCostCache,
    groups: &[Range<usize>],
    ws: &mut Workspace,
) -> Vec<ProcId> {
    let mut centers: Vec<Option<ProcId>> = groups
        .iter()
        .map(|g| {
            (!cache.range_is_empty(g.start, g.end)).then(|| {
                cache
                    .optimal_center_range(g.start, g.end, &mut ws.axes, &mut ws.table)
                    .0
            })
        })
        .collect();
    crate::lomcds::resolve_gaps_pub(&mut centers);
    centers
        .into_iter()
        .map(|c| c.unwrap_or(ProcId(0)))
        .collect()
}

/// Total cost (reference + movement) of a grouping under a method,
/// unconstrained by memory. This is the paper's `COST(T)`.
pub fn cost_of_grouping(
    grid: &Grid,
    rs: &DataRefString,
    groups: &[Range<usize>],
    group_method: GroupMethod,
) -> u64 {
    match group_method {
        GroupMethod::LocalCenters => {
            let centers = local_group_centers(grid, rs, groups);
            let mut total = 0u64;
            for (g, &c) in groups.iter().zip(&centers) {
                let merged = rs.merged_range(g.start, g.end);
                total += cost_at(grid, &merged, c);
            }
            for pair in centers.windows(2) {
                total += grid.dist(pair[0], pair[1]);
            }
            total
        }
        GroupMethod::GomcdsCenters => {
            let regrouped = rs.regrouped(groups);
            gomcds_path(grid, &regrouped, Solver::DistanceTransform).1
        }
    }
}

/// [`cost_of_grouping`] served from the datum's cost cache: each candidate
/// group range costs `O(width + height + m)` regardless of how many
/// references it merges — this is what turns Algorithm 3's inner loop from
/// `O(r·m)` per evaluation into grid-sized work.
pub fn cost_of_grouping_cached(
    grid: &Grid,
    cache: &DatumCostCache,
    groups: &[Range<usize>],
    group_method: GroupMethod,
    ws: &mut Workspace,
) -> u64 {
    match group_method {
        GroupMethod::LocalCenters => {
            // A non-empty group's resolved center is its own optimal
            // center, so its reference cost is exactly the optimum the
            // argmin reports; empty groups carry a center forward and
            // contribute zero reference cost.
            let mut refcost = 0u64;
            let mut centers: Vec<Option<ProcId>> = groups
                .iter()
                .map(|g| {
                    (!cache.range_is_empty(g.start, g.end)).then(|| {
                        let (c, cost) =
                            cache.optimal_center_range(g.start, g.end, &mut ws.axes, &mut ws.table);
                        refcost += cost;
                        c
                    })
                })
                .collect();
            crate::lomcds::resolve_gaps_pub(&mut centers);
            let mut total = refcost;
            for pair in centers.windows(2) {
                let a = pair[0].unwrap_or(ProcId(0));
                let b = pair[1].unwrap_or(ProcId(0));
                total += grid.dist(a, b);
            }
            total
        }
        GroupMethod::GomcdsCenters => gomcds_path_ranges(grid, cache, groups, ws).1,
    }
}

/// Paper Algorithm 3: greedy grouping of one datum's windows.
///
/// Returns the grouping as consecutive half-open ranges partitioning
/// `0..num_windows`.
///
/// ```
/// use pim_array::grid::Grid;
/// use pim_trace::window::{DataRefString, WindowRefs};
/// use pim_sched::grouping::{greedy_grouping, GroupMethod};
///
/// let grid = Grid::new(4, 4);
/// // two identical windows near (1,1), then a far hotspot
/// let near = || WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2)]);
/// let rs = DataRefString::new(vec![
///     near(), near(),
///     WindowRefs::from_pairs([(grid.proc_xy(3, 3), 9)]),
/// ]);
/// let groups = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
/// assert_eq!(groups, vec![0..2, 2..3]); // merges the twins, keeps the hotspot apart
/// ```
pub fn greedy_grouping(grid: &Grid, rs: &DataRefString, method: GroupMethod) -> Vec<Range<usize>> {
    let cache = DatumCostCache::build(grid, rs);
    let mut ws = Workspace::new();
    greedy_grouping_cached(grid, &cache, method, &mut ws)
}

/// The literal Algorithm 3 loop: re-assemble and fully re-cost both
/// candidate partitions at every step — `O(n)` group evaluations per
/// extension decision, `O(n²)` overall. This is the frozen reference the
/// incremental [`greedy_grouping_cached`] is property-tested bit-identical
/// against (`tests/grouping_props.rs`), and what the uncached scheduling
/// path runs.
pub fn greedy_grouping_oracle(
    grid: &Grid,
    rs: &DataRefString,
    method: GroupMethod,
) -> Vec<Range<usize>> {
    let n = rs.num_windows();
    let mut confirmed: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for j in 1..n {
        // T: current group start..j plus remaining singletons.
        // TNEW: current group extended to start..j+1 plus remaining
        // singletons. Keep the extension when not worse.
        let current = assemble(&confirmed, start..j, j, n);
        let extended = assemble(&confirmed, start..j + 1, j + 1, n);
        let keep = cost_of_grouping(grid, rs, &extended, method)
            <= cost_of_grouping(grid, rs, &current, method);
        if !keep {
            confirmed.push(start..j);
            start = j;
        }
    }
    confirmed.push(start..n);
    confirmed
}

/// [`greedy_grouping`] with each extension decision evaluated
/// incrementally from the datum's cost cache — `O(1)` group evaluations
/// (one cache range query) per step instead of the oracle's `O(n)` full
/// re-costings, and no per-step partition `Vec`s.
///
/// Both candidate partitions at step `j` share all three parts of their
/// cost: the *confirmed prefix* (carried forward as a running sum — under
/// [`GroupMethod::GomcdsCenters`], as the relaxed DP row after the last
/// confirmed group), the *current group* (carried from the previous step;
/// the extension needs exactly one new range query), and the *singleton
/// tail* `j..n`, precomputed once as a backward suffix array (`tail[j]` for
/// local centers, a suffix DP row per window for GOMCDS centers). Summing
/// the three parts reproduces the oracle's full-partition cost exactly —
/// same `u64` arithmetic, no approximation — so every `≤` comparison, and
/// therefore the grouping, is bit-identical to [`greedy_grouping_oracle`].
pub fn greedy_grouping_cached(
    grid: &Grid,
    cache: &DatumCostCache,
    method: GroupMethod,
    ws: &mut Workspace,
) -> Vec<Range<usize>> {
    match method {
        GroupMethod::LocalCenters => greedy_local_incremental(grid, cache, ws),
        GroupMethod::GomcdsCenters => greedy_gomcds_incremental(grid, cache, ws),
    }
}

/// Movement link from the last confirmed non-empty center (if any) into a
/// group centered at `c`.
fn link(grid: &Grid, last: Option<ProcId>, c: ProcId) -> u64 {
    last.map_or(0, |l| grid.dist(l, c))
}

/// [`GroupMethod::LocalCenters`] cost of "group (center `c`, refcost `o`,
/// possibly empty) followed by singleton windows `t..n`", given the last
/// confirmed non-empty center. Empty windows and groups contribute nothing
/// under the carry-forward center rule, so the cost decomposes into
/// non-empty groups' optima plus links between consecutive non-empty
/// centers — which is what `tail`/`next_ref`/`win_centers` precompute for
/// the singleton suffix.
fn local_group_and_tail(
    grid: &Grid,
    ws: &Workspace,
    last: Option<ProcId>,
    nonempty: bool,
    c: ProcId,
    o: u64,
    t: usize,
) -> u64 {
    let n = ws.tail.len() - 1;
    let nn = ws.next_ref[t]; // first referenced singleton in the tail
    if nonempty {
        let bridge = if nn < n {
            grid.dist(c, ws.win_centers[nn])
        } else {
            0
        };
        link(grid, last, c) + o + bridge + ws.tail[t]
    } else {
        let bridge = match (last, nn < n) {
            (Some(l), true) => grid.dist(l, ws.win_centers[nn]),
            _ => 0,
        };
        bridge + ws.tail[t]
    }
}

fn greedy_local_incremental(
    grid: &Grid,
    cache: &DatumCostCache,
    ws: &mut Workspace,
) -> Vec<Range<usize>> {
    let n = cache.num_windows();
    // Per-window singleton centers/costs and the referenced-window index.
    ws.win_centers.clear();
    ws.win_centers.resize(n, ProcId(0));
    ws.win_costs.clear();
    ws.win_costs.resize(n, 0);
    ws.next_ref.clear();
    ws.next_ref.resize(n + 1, n);
    for w in (0..n).rev() {
        if cache.range_is_empty(w, w + 1) {
            ws.next_ref[w] = ws.next_ref[w + 1];
        } else {
            let (c, cost) = cache.optimal_center_range(w, w + 1, &mut ws.axes, &mut ws.table);
            ws.win_centers[w] = c;
            ws.win_costs[w] = cost;
            ws.next_ref[w] = w;
        }
    }
    // tail[j] = cost of windows j..n as singleton groups.
    ws.tail.clear();
    ws.tail.resize(n + 1, 0);
    for j in (0..n).rev() {
        ws.tail[j] = if ws.next_ref[j] != j {
            ws.tail[j + 1]
        } else {
            let nn = ws.next_ref[j + 1];
            let hop = if nn < n {
                grid.dist(ws.win_centers[j], ws.win_centers[nn])
            } else {
                0
            };
            ws.win_costs[j] + hop + ws.tail[j + 1]
        };
    }

    let mut confirmed: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    let mut prefix_cost = 0u64; // confirmed groups incl. links between them
    let mut last: Option<ProcId> = None; // last confirmed non-empty center
    let mut cur_nonempty = ws.next_ref[0] == 0;
    let mut cur_c = ws.win_centers.first().copied().unwrap_or(ProcId(0));
    let mut cur_o = ws.win_costs.first().copied().unwrap_or(0);
    for j in 1..n {
        let cur_total =
            prefix_cost + local_group_and_tail(grid, ws, last, cur_nonempty, cur_c, cur_o, j);
        let (ext_nonempty, ext_c, ext_o) = if cache.range_is_empty(start, j + 1) {
            (false, ProcId(0), 0)
        } else {
            let (c, o) = cache.optimal_center_range(start, j + 1, &mut ws.axes, &mut ws.table);
            (true, c, o)
        };
        let ext_total =
            prefix_cost + local_group_and_tail(grid, ws, last, ext_nonempty, ext_c, ext_o, j + 1);
        if ext_total <= cur_total {
            cur_nonempty = ext_nonempty;
            cur_c = ext_c;
            cur_o = ext_o;
        } else {
            confirmed.push(start..j);
            if cur_nonempty {
                prefix_cost += link(grid, last, cur_c) + cur_o;
                last = Some(cur_c);
            }
            start = j;
            cur_nonempty = ws.next_ref[j] == j;
            cur_c = ws.win_centers[j];
            cur_o = ws.win_costs[j];
        }
    }
    confirmed.push(start..n);
    confirmed
}

/// `min_k (fwd[k] + suffix[k])` — joining the forward DP frontier to the
/// precomputed suffix DP gives the exact full-partition GOMCDS cost.
fn join_min(fwd: &[u64], suffix: &[u64]) -> u64 {
    fwd.iter()
        .zip(suffix)
        .map(|(&a, &b)| a + b)
        .min()
        .expect("non-empty grid")
}

fn greedy_gomcds_incremental(
    grid: &Grid,
    cache: &DatumCostCache,
    ws: &mut Workspace,
) -> Vec<Range<usize>> {
    let n = cache.num_windows();
    let m = grid.num_procs();
    // Backward suffix DP over singleton windows: suffix_dp[j][k] = cheapest
    // way to serve windows j..n given the datum sits at k entering window
    // j, i.e. relax(node_j + suffix_{j+1}) — the mirror image of the
    // forward layered DP in crate::gomcds (the L1 metric is symmetric).
    ws.suffix_dp.clear();
    ws.suffix_dp.resize((n + 1) * m, 0);
    for j in (0..n).rev() {
        cache.window_table(j, &mut ws.axes, &mut ws.table);
        ws.fwd_ext.clear();
        ws.fwd_ext
            .extend((0..m).map(|k| ws.table[k] + ws.suffix_dp[(j + 1) * m + k]));
        crate::dt::l1_relax(grid, &ws.fwd_ext, &mut ws.relaxed);
        ws.suffix_dp[j * m..(j + 1) * m].copy_from_slice(&ws.relaxed);
    }

    // Forward frontier: fwd = DP row of the current group (node costs of
    // start..j, plus the relaxed row after the confirmed groups once any
    // exist). Splitting the layered DP at the current group's layer —
    // min_k (fwd[k] + suffix[j][k]) — reproduces the full shortest-path
    // cost of "confirmed ++ current ++ singletons" exactly.
    let mut confirmed: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    let mut have_prefix = false;
    cache.range_table(0, 1, &mut ws.axes, &mut ws.fwd);
    for j in 1..n {
        let cur_total = join_min(&ws.fwd, &ws.suffix_dp[j * m..(j + 1) * m]);
        cache.range_table(start, j + 1, &mut ws.axes, &mut ws.table);
        ws.fwd_ext.clear();
        if have_prefix {
            ws.fwd_ext
                .extend((0..m).map(|k| ws.table[k] + ws.relaxed_prefix[k]));
        } else {
            ws.fwd_ext.extend_from_slice(&ws.table);
        }
        let ext_total = join_min(&ws.fwd_ext, &ws.suffix_dp[(j + 1) * m..(j + 2) * m]);
        if ext_total <= cur_total {
            core::mem::swap(&mut ws.fwd, &mut ws.fwd_ext);
        } else {
            confirmed.push(start..j);
            crate::dt::l1_relax(grid, &ws.fwd, &mut ws.relaxed_prefix);
            have_prefix = true;
            start = j;
            cache.window_table(j, &mut ws.axes, &mut ws.table);
            ws.fwd.clear();
            ws.fwd
                .extend((0..m).map(|k| ws.table[k] + ws.relaxed_prefix[k]));
        }
    }
    confirmed.push(start..n);
    confirmed
}

/// `confirmed ++ [current] ++ singletons rest..n` (oracle-path helper).
fn assemble(
    confirmed: &[Range<usize>],
    current: Range<usize>,
    rest: usize,
    n: usize,
) -> Vec<Range<usize>> {
    let mut v = Vec::with_capacity(confirmed.len() + 1 + (n - rest));
    v.extend(confirmed.iter().cloned());
    v.push(current);
    v.extend((rest..n).map(|i| i..i + 1));
    v
}

/// Exact minimum-cost grouping for the [`GroupMethod::LocalCenters`] model
/// via DP over group boundaries.
///
/// Key observation: a window with no references contributes nothing to any
/// group's merged reference string, and under the carry-forward center rule
/// it never induces movement on its own. The cost of a grouping therefore
/// depends only on how the *referenced* windows are partitioned into
/// consecutive runs. The DP runs over referenced windows (`t` of them);
/// empty windows are attached to the preceding group afterwards.
pub fn optimal_grouping(grid: &Grid, rs: &DataRefString) -> (Vec<Range<usize>>, u64) {
    let cache = DatumCostCache::build(grid, rs);
    let mut ws = Workspace::new();
    optimal_grouping_cached(grid, &cache, &mut ws)
}

/// [`optimal_grouping`] in `O(t²)` DP transitions instead of the oracle's
/// `O(t³)` triple loop.
///
/// The oracle's inner minimum `min_k dp[k][a−1] + dist(centers[k][a−1], ·)`
/// depends on `k` only through the *center* of run `k..=a−1` — so for each
/// boundary `a` all `k` are projected onto the grid once
/// (`g_a[p] = min dp[k][a−1]` over runs centered at `p`) and one L1
/// distance transform of `g_a` answers the minimum for *every* `(a, b)`
/// cell at once: `dp[a][b] = costs[a][b] + relax(g_a)[centers[a][b]]`.
/// That is `O(t·m)` relax work plus `O(t²)` fills; group costs come from
/// the cache's prefix-served range queries instead of incremental
/// re-merging. The relax computes the same exact `u64` minima the scan
/// did, and parents are re-derived by the oracle's own lowest-`k` rule, so
/// grouping and cost are bit-identical to [`optimal_grouping_oracle`]
/// (property-tested in `tests/grouping_props.rs`).
pub fn optimal_grouping_cached(
    grid: &Grid,
    cache: &DatumCostCache,
    ws: &mut Workspace,
) -> (Vec<Range<usize>>, u64) {
    let n = cache.num_windows();
    let refd: Vec<usize> = (0..n)
        .filter(|&w| !cache.range_is_empty(w, w + 1))
        .collect();
    let t = refd.len();
    if t == 0 {
        #[allow(clippy::single_range_in_vec_init)] // one group covering 0..n is the intent
        return (vec![0..n], 0);
    }
    let m = grid.num_procs();

    // Merged cost and center for every run refd[a]..=refd[b] (flattened
    // a·t+b). Interior empty windows contribute nothing to the merge, so
    // querying refd[a]..refd[b]+1 is exact.
    let mut centers = vec![ProcId(0); t * t];
    let mut costs = vec![0u64; t * t];
    for a in 0..t {
        for b in a..t {
            let (c, cost) =
                cache.optimal_center_range(refd[a], refd[b] + 1, &mut ws.axes, &mut ws.table);
            centers[a * t + b] = c;
            costs[a * t + b] = cost;
        }
    }

    // dp[a][b]: best cost covering referenced windows 0..=b, last run a..=b.
    let mut dp = vec![0u64; t * t];
    dp[..t].copy_from_slice(&costs[..t]); // a = 0: no predecessor
    let mut proj = vec![INF; m];
    let mut relaxed = Vec::new();
    for a in 1..t {
        // Project every predecessor run k..=a−1 onto its center.
        proj.iter_mut().for_each(|v| *v = INF);
        for k in 0..a {
            let p = centers[k * t + a - 1].index();
            let v = dp[k * t + a - 1];
            if v < proj[p] {
                proj[p] = v;
            }
        }
        crate::dt::l1_relax(grid, &proj, &mut relaxed);
        for b in a..t {
            dp[a * t + b] = costs[a * t + b] + relaxed[centers[a * t + b].index()];
        }
    }

    // Lowest-index argmin over the last column, as the oracle scans.
    let (mut a, mut best) = (0usize, dp[t - 1]);
    for cand in 1..t {
        if dp[cand * t + t - 1] < best {
            best = dp[cand * t + t - 1];
            a = cand;
        }
    }

    // Reconstruct runs along the optimal path only: the oracle's parent of
    // cell (a, b) is the lowest k whose transition achieves dp[a][b], i.e.
    // the first k with dp[k][a−1] + dist == dp[a][b] − costs[a][b].
    let mut runs: Vec<(usize, usize)> = Vec::new(); // inclusive (a, b)
    let mut b = t - 1;
    loop {
        runs.push((a, b));
        if a == 0 {
            break;
        }
        let need = dp[a * t + b] - costs[a * t + b];
        let cab = centers[a * t + b];
        let k = (0..a)
            .find(|&k| dp[k * t + a - 1] + grid.dist(centers[k * t + a - 1], cab) == need)
            .expect("dp backtrack must find a predecessor");
        b = a - 1;
        a = k;
    }
    runs.reverse();

    (attach_empty_windows(&runs, &refd, n), best)
}

/// The original `O(t³)` boundary DP with incremental reference-list
/// merging — the frozen reference [`optimal_grouping_cached`] is
/// property-tested bit-identical against.
pub fn optimal_grouping_oracle(grid: &Grid, rs: &DataRefString) -> (Vec<Range<usize>>, u64) {
    let n = rs.num_windows();
    let refd: Vec<usize> = (0..n).filter(|&w| !rs.window(w).is_empty()).collect();
    let t = refd.len();
    if t == 0 {
        #[allow(clippy::single_range_in_vec_init)] // one group covering 0..n is the intent
        return (vec![0..n], 0);
    }

    // Merged cost and center for every run refd[a]..=refd[b].
    let mut centers = vec![vec![ProcId(0); t]; t];
    let mut costs = vec![vec![0u64; t]; t];
    for a in 0..t {
        let mut merged = WindowRefs::new();
        for b in a..t {
            merged.merge(rs.window(refd[b]));
            let (c, cost) = optimal_center(grid, &merged);
            centers[a][b] = c;
            costs[a][b] = cost;
        }
    }

    const UNSET: u64 = u64::MAX;
    // dp[a][b]: best cost covering referenced windows 0..=b, last run a..=b.
    let mut dp = vec![vec![UNSET; t]; t];
    let mut parent: Vec<Vec<Option<usize>>> = vec![vec![None; t]; t];
    for b in 0..t {
        for a in 0..=b {
            if a == 0 {
                dp[a][b] = costs[a][b];
                continue;
            }
            let mut best = UNSET;
            let mut best_k = None;
            for k in 0..a {
                if dp[k][a - 1] == UNSET {
                    continue;
                }
                let mv = grid.dist(centers[k][a - 1], centers[a][b]);
                let cand = dp[k][a - 1] + costs[a][b] + mv;
                if cand < best {
                    best = cand;
                    best_k = Some(k);
                }
            }
            dp[a][b] = best;
            parent[a][b] = best_k;
        }
    }

    let (mut a, mut best) = (0usize, UNSET);
    for cand in 0..t {
        if dp[cand][t - 1] < best {
            best = dp[cand][t - 1];
            a = cand;
        }
    }

    // Reconstruct runs in referenced-index space.
    let mut runs: Vec<(usize, usize)> = Vec::new(); // inclusive (a, b)
    let mut b = t - 1;
    loop {
        runs.push((a, b));
        match parent[a][b] {
            Some(k) => {
                b = a - 1;
                a = k;
            }
            None => break,
        }
    }
    runs.reverse();

    (attach_empty_windows(&runs, &refd, n), best)
}

/// Map runs in referenced-index space back to full-window ranges: each
/// group starts at the previous group's end; empty windows attach to the
/// preceding group (leading empties to the first group), adding no cost.
fn attach_empty_windows(runs: &[(usize, usize)], refd: &[usize], n: usize) -> Vec<Range<usize>> {
    let mut groups = Vec::with_capacity(runs.len());
    let mut start = 0usize;
    for (i, &(_, rb)) in runs.iter().enumerate() {
        let end = if i + 1 < runs.len() {
            refd[runs[i + 1].0]
        } else {
            n
        };
        debug_assert!(refd[rb] < end);
        groups.push(start..end);
        start = end;
    }
    groups
}

/// Schedule the whole trace with greedy grouping, deciding and placing with
/// the same [`GroupMethod`]. See [`grouped_schedule_with`].
pub fn grouped_schedule(trace: &WindowedTrace, spec: MemorySpec, method: GroupMethod) -> Schedule {
    grouped_schedule_with(trace, spec, method, method)
}

/// Schedule the whole trace with greedy grouping (the paper's Table 2
/// pipeline): per datum, group windows with Algorithm 3 costed by the
/// `decide` method, then place each group's center with the `place` method
/// under the memory constraint. The paper's Table 2 runs Algorithm 3
/// "assuming using LOMCDS to compute centers" (`decide = LocalCenters`) and
/// then reports each scheduler on the grouped windows.
///
/// With [`GroupMethod::LocalCenters`] placement, capacity is resolved
/// window-major in ascending datum order like LOMCDS; a datum entering a
/// group claims a slot in *every* window of the group (it stays put
/// throughout). With [`GroupMethod::GomcdsCenters`] placement, data are
/// processed in id order and each solves a masked shortest path over its
/// grouped windows like GOMCDS.
///
/// # Panics
/// Panics if the array's total memory cannot hold every datum. Use the
/// [`crate::Run`] pipeline (or [`grouped_schedule_with_cached`]) for a
/// typed [`crate::SchedError`] instead.
pub fn grouped_schedule_with(
    trace: &WindowedTrace,
    spec: MemorySpec,
    decide: GroupMethod,
    place: GroupMethod,
) -> Schedule {
    let cache = CostCache::build(trace);
    let mut ws = Workspace::new();
    grouped_schedule_with_cached(trace, spec, decide, place, &cache, &mut ws)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`grouped_schedule_with`] served from a shared per-trace cost cache:
/// grouping decisions, group tables, and masked GOMCDS placement all use
/// prefix-sum range queries. Bit-identical to the uncached reference.
pub fn grouped_schedule_with_cached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    decide: GroupMethod,
    place: GroupMethod,
    cache: &CostCache,
    ws: &mut Workspace,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    let nd = trace.num_data();
    let groupings: Vec<Vec<Range<usize>>> = (0..nd)
        .map(|d| greedy_grouping_cached(&grid, cache.datum(DataId(d as u32)), decide, ws))
        .collect();
    grouped_place_cached(trace, spec, place, cache, ws, &groupings)
}

/// Two-phase parallel grouped scheduling, bit-identical to the sequential
/// [`grouped_schedule_with_cached`]: phase 1 runs the per-datum greedy
/// grouping decisions — pure functions of one datum's reference string,
/// and the dominant cost of the pipeline — across the pool; phase 2 is the
/// unchanged sequential placement replay (shared verbatim with the
/// sequential path), so capacity resolution sees the same state in the
/// same order regardless of thread count.
pub fn grouped_schedule_parallel(
    trace: &WindowedTrace,
    spec: MemorySpec,
    decide: GroupMethod,
    place: GroupMethod,
    cache: &CostCache<'_>,
    pool: pim_par::Pool,
    ws: &mut Workspace,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    let metrics = ws.metrics.clone();
    let ids: Vec<_> = trace.iter_data().map(|(d, _)| d).collect();
    let groupings = {
        let _t = metrics.phase("Grouped/phase1-groupings");
        pim_par::parallel_map_with(pool, &ids, Workspace::new, |w, _, &d| {
            greedy_grouping_cached(&grid, cache.datum(d), decide, w)
        })
    };
    let _t = metrics.phase("Grouped/phase2-replay");
    grouped_place_cached(trace, spec, place, cache, ws, &groupings)
}

/// The placement phase shared by the sequential and two-phase parallel
/// grouped schedulers: resolve capacity for precomputed per-datum
/// groupings, sequentially in the fixed datum/window order.
fn grouped_place_cached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    place: GroupMethod,
    cache: &CostCache,
    ws: &mut Workspace,
    groupings: &[Vec<Range<usize>>],
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    ensure_feasible(&grid, spec, nd)?;
    let metrics = ws.metrics.clone();
    let mut mems: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();
    let mut centers = vec![vec![ProcId(0); nw]; nd];

    match place {
        GroupMethod::LocalCenters => {
            // Per-datum unconstrained group centers, used as anchors.
            let desired: Vec<Vec<ProcId>> = (0..nd)
                .map(|d| {
                    local_group_centers_cached(cache.datum(DataId(d as u32)), &groupings[d], ws)
                })
                .collect();
            // Map window → group index per datum.
            let group_of: Vec<Vec<usize>> = groupings
                .iter()
                .map(|gs| {
                    let mut v = vec![0usize; nw];
                    for (gi, g) in gs.iter().enumerate() {
                        for w in g.clone() {
                            v[w] = gi;
                        }
                    }
                    v
                })
                .collect();
            for w in 0..nw {
                for d in 0..nd {
                    let gi = group_of[d][w];
                    let g = &groupings[d][gi];
                    if g.start != w {
                        continue; // group already placed at its first window
                    }
                    let dc = cache.datum(DataId(d as u32));
                    let anchor = if w == 0 {
                        desired[d][gi]
                    } else {
                        centers[d][w - 1]
                    };
                    if dc.range_is_empty(g.start, g.end) {
                        // preference order: nearest to the anchor
                        let anchor_refs = WindowRefs::from_pairs([(anchor, 1)]);
                        crate::cost::cost_table_with(
                            &grid,
                            &anchor_refs,
                            &mut ws.axes,
                            &mut ws.table,
                        );
                    } else {
                        dc.range_table(g.start, g.end, &mut ws.axes, &mut ws.table);
                    }
                    let list = crate::capacity::ProcessorList::from_cost_table(&ws.table);
                    let chosen = list
                        .iter()
                        .enumerate()
                        .map(|(rank, (p, _))| (rank, p))
                        .find(|&(_, p)| g.clone().all(|wi| mems[wi].has_room(p)));
                    match chosen {
                        Some((rank, p)) => {
                            metrics.record_placement(rank);
                            for wi in g.clone() {
                                mems[wi]
                                    .allocate(p)
                                    .map_err(|_| exhausted(DataId(d as u32), Some(wi)))?;
                                centers[d][wi] = p;
                            }
                        }
                        None => {
                            // Memory too fragmented for the whole group to
                            // share one processor (only possible with zero
                            // slack): degrade to per-window placement along
                            // the group's preference order. The group's
                            // cost benefit is lost for this datum but the
                            // schedule stays feasible.
                            for wi in g.clone() {
                                let (rank, p) = list
                                    .iter()
                                    .enumerate()
                                    .map(|(rank, (p, _))| (rank, p))
                                    .find(|&(_, p)| mems[wi].has_room(p))
                                    .ok_or_else(|| exhausted(DataId(d as u32), Some(wi)))?;
                                metrics.record_placement(rank);
                                mems[wi]
                                    .allocate(p)
                                    .map_err(|_| exhausted(DataId(d as u32), Some(wi)))?;
                                centers[d][wi] = p;
                            }
                        }
                    }
                }
            }
        }
        GroupMethod::GomcdsCenters => {
            // Whole-path allocation is greedy across every window at once,
            // so processing order matters more than for the window-major
            // schedulers; heaviest data first keeps the big reference
            // volumes at their optimal centers and lets light data adapt
            // (deterministic: ties broken by ascending id).
            let mut order: Vec<usize> = (0..nd).collect();
            order.sort_by_key(|&d| (u64::MAX - trace.refs(DataId(d as u32)).total_volume(), d));
            for d in order {
                let dc = cache.datum(DataId(d as u32));
                let groups = &groupings[d];
                // Build group-level masks: a group slot is full when any of
                // its windows lacks room.
                let group_mems: Vec<MemoryMap> = groups
                    .iter()
                    .map(|g| {
                        let mut m = MemoryMap::new(&grid, spec);
                        for p in grid.procs() {
                            if !g.clone().all(|wi| mems[wi].has_room(p)) {
                                // mark full by exhausting its capacity
                                while m.allocate(p).is_ok() {}
                            }
                        }
                        m
                    })
                    .collect();
                match crate::gomcds::solve_masked_ranges(&grid, dc, groups, &group_mems, ws) {
                    Some(path) => {
                        for (gi, g) in groups.iter().enumerate() {
                            for wi in g.clone() {
                                mems[wi]
                                    .allocate(path[gi])
                                    .map_err(|_| exhausted(DataId(d as u32), Some(wi)))?;
                                centers[d][wi] = path[gi];
                            }
                        }
                    }
                    None => {
                        // No processor is free across every window of some
                        // group (zero-slack fragmentation): fall back to an
                        // ungrouped masked path for this datum, which only
                        // needs one free slot per individual window.
                        let path = crate::gomcds::solve_masked_path_cached(&grid, dc, &mems, ws)
                            .ok_or_else(|| exhausted(DataId(d as u32), None))?;
                        for (wi, &p) in path.iter().enumerate() {
                            mems[wi]
                                .allocate(p)
                                .map_err(|_| exhausted(DataId(d as u32), Some(wi)))?;
                            centers[d][wi] = p;
                        }
                    }
                }
            }
        }
    }
    Ok(Schedule::new(grid, centers))
}

/// Pre-cache reference implementation of [`grouped_schedule_with`] — every
/// merged range re-walks the reference lists. Bit-identical; kept for the
/// equivalence property tests and benches.
pub fn grouped_schedule_with_uncached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    decide: GroupMethod,
    place: GroupMethod,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    ensure_feasible(&grid, spec, nd)?;

    let groupings: Vec<Vec<Range<usize>>> = (0..nd)
        .map(|d| greedy_grouping_oracle(&grid, trace.refs(DataId(d as u32)), decide))
        .collect();
    let mut mems: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();
    let mut centers = vec![vec![ProcId(0); nw]; nd];

    match place {
        GroupMethod::LocalCenters => {
            // Per-datum unconstrained group centers, used as anchors.
            let desired: Vec<Vec<ProcId>> = (0..nd)
                .map(|d| local_group_centers(&grid, trace.refs(DataId(d as u32)), &groupings[d]))
                .collect();
            // Map window → group index per datum.
            let group_of: Vec<Vec<usize>> = groupings
                .iter()
                .map(|gs| {
                    let mut v = vec![0usize; nw];
                    for (gi, g) in gs.iter().enumerate() {
                        for w in g.clone() {
                            v[w] = gi;
                        }
                    }
                    v
                })
                .collect();
            for w in 0..nw {
                for d in 0..nd {
                    let gi = group_of[d][w];
                    let g = &groupings[d][gi];
                    if g.start != w {
                        continue; // group already placed at its first window
                    }
                    let rs = trace.refs(DataId(d as u32));
                    let merged = rs.merged_range(g.start, g.end);
                    let anchor = if w == 0 {
                        desired[d][gi]
                    } else {
                        centers[d][w - 1]
                    };
                    let mut table = Vec::new();
                    let list = if merged.is_empty() {
                        // preference order: nearest to the anchor
                        let anchor_refs = WindowRefs::from_pairs([(anchor, 1)]);
                        crate::cost::cost_table(&grid, &anchor_refs, &mut table);
                        crate::capacity::ProcessorList::from_cost_table(&table)
                    } else {
                        crate::cost::cost_table(&grid, &merged, &mut table);
                        crate::capacity::ProcessorList::from_cost_table(&table)
                    };
                    let chosen = list
                        .iter()
                        .map(|(p, _)| p)
                        .find(|&p| g.clone().all(|wi| mems[wi].has_room(p)));
                    match chosen {
                        Some(p) => {
                            for wi in g.clone() {
                                mems[wi]
                                    .allocate(p)
                                    .map_err(|_| exhausted(DataId(d as u32), Some(wi)))?;
                                centers[d][wi] = p;
                            }
                        }
                        None => {
                            // Memory too fragmented for the whole group to
                            // share one processor (only possible with zero
                            // slack): degrade to per-window placement along
                            // the group's preference order. The group's
                            // cost benefit is lost for this datum but the
                            // schedule stays feasible.
                            for wi in g.clone() {
                                let p = list
                                    .iter()
                                    .map(|(p, _)| p)
                                    .find(|&p| mems[wi].has_room(p))
                                    .ok_or_else(|| exhausted(DataId(d as u32), Some(wi)))?;
                                mems[wi]
                                    .allocate(p)
                                    .map_err(|_| exhausted(DataId(d as u32), Some(wi)))?;
                                centers[d][wi] = p;
                            }
                        }
                    }
                }
            }
        }
        GroupMethod::GomcdsCenters => {
            // Whole-path allocation is greedy across every window at once,
            // so processing order matters more than for the window-major
            // schedulers; heaviest data first keeps the big reference
            // volumes at their optimal centers and lets light data adapt
            // (deterministic: ties broken by ascending id).
            let mut order: Vec<usize> = (0..nd).collect();
            order.sort_by_key(|&d| (u64::MAX - trace.refs(DataId(d as u32)).total_volume(), d));
            for d in order {
                let rs = trace.refs(DataId(d as u32));
                let groups = &groupings[d];
                let regrouped = rs.regrouped(groups);
                // Build group-level masks: a group slot is full when any of
                // its windows lacks room.
                let group_mems: Vec<MemoryMap> = groups
                    .iter()
                    .map(|g| {
                        let mut m = MemoryMap::new(&grid, spec);
                        for p in grid.procs() {
                            if !g.clone().all(|wi| mems[wi].has_room(p)) {
                                // mark full by exhausting its capacity
                                while m.allocate(p).is_ok() {}
                            }
                        }
                        m
                    })
                    .collect();
                match crate::gomcds::solve_masked_path(&grid, &regrouped, &group_mems) {
                    Some(path) => {
                        for (gi, g) in groups.iter().enumerate() {
                            for wi in g.clone() {
                                mems[wi]
                                    .allocate(path[gi])
                                    .map_err(|_| exhausted(DataId(d as u32), Some(wi)))?;
                                centers[d][wi] = path[gi];
                            }
                        }
                    }
                    None => {
                        // No processor is free across every window of some
                        // group (zero-slack fragmentation): fall back to an
                        // ungrouped masked path for this datum, which only
                        // needs one free slot per individual window.
                        let path = crate::gomcds::solve_masked_path(&grid, rs, &mems)
                            .ok_or_else(|| exhausted(DataId(d as u32), None))?;
                        for (wi, &p) in path.iter().enumerate() {
                            mems[wi]
                                .allocate(p)
                                .map_err(|_| exhausted(DataId(d as u32), Some(wi)))?;
                            centers[d][wi] = p;
                        }
                    }
                }
            }
        }
    }
    Ok(Schedule::new(grid, centers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::window::WindowRefs;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    fn rs_of(windows: Vec<WindowRefs>) -> DataRefString {
        DataRefString::new(windows)
    }

    #[test]
    fn identical_windows_group_into_one() {
        let grid = g();
        let w = || WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1), (grid.proc_xy(3, 2), 1)]);
        let rs = rs_of(vec![w(), w(), w(), w()]);
        let groups = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
        assert_eq!(groups, vec![0..4]);
    }

    #[test]
    fn far_apart_hotspots_stay_separate() {
        let grid = g();
        let rs = rs_of(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 10)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 10)]),
        ]);
        let groups = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
        // Grouping would cost 10·min-dist ≥ 30; separate costs movement 6.
        assert_eq!(groups, vec![0..1, 1..2]);
    }

    #[test]
    fn grouping_never_increases_cost() {
        let grid = g();
        let rs = rs_of(vec![
            WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2)]),
            WindowRefs::from_pairs([(grid.proc_xy(2, 1), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(1, 2), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 5)]),
        ]);
        for method in [GroupMethod::LocalCenters, GroupMethod::GomcdsCenters] {
            let singletons: Vec<Range<usize>> = (0..4).map(|i| i..i + 1).collect();
            let before = cost_of_grouping(&grid, &rs, &singletons, method);
            let groups = greedy_grouping(&grid, &rs, method);
            let after = cost_of_grouping(&grid, &rs, &groups, method);
            assert!(after <= before, "{method:?}: {after} > {before}");
        }
    }

    #[test]
    fn optimal_grouping_never_worse_than_greedy() {
        let grid = g();
        let rs = rs_of(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3)]),
            WindowRefs::from_pairs([(grid.proc_xy(1, 0), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 1), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 4)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 2), 1)]),
        ]);
        let greedy = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
        let greedy_cost = cost_of_grouping(&grid, &rs, &greedy, GroupMethod::LocalCenters);
        let (opt_groups, opt_cost) = optimal_grouping(&grid, &rs);
        assert!(opt_cost <= greedy_cost);
        assert_eq!(
            cost_of_grouping(&grid, &rs, &opt_groups, GroupMethod::LocalCenters),
            opt_cost,
            "reported optimum must match its own grouping's cost"
        );
    }

    #[test]
    fn groups_partition_windows() {
        let grid = g();
        let rs = rs_of(
            (0..7)
                .map(|i| WindowRefs::from_pairs([(ProcId(i % 16), 1 + i % 3)]))
                .collect(),
        );
        for method in [GroupMethod::LocalCenters, GroupMethod::GomcdsCenters] {
            let groups = greedy_grouping(&grid, &rs, method);
            let mut expect = 0;
            for r in &groups {
                assert_eq!(r.start, expect);
                assert!(r.end > r.start);
                expect = r.end;
            }
            assert_eq!(expect, 7);
        }
    }

    #[test]
    fn grouped_schedule_no_worse_than_lomcds_on_oscillation() {
        let grid = g();
        // references ping-pong between close processors: per-window moves
        // are pure waste; grouping should collapse them.
        let a = grid.proc_xy(1, 1);
        let b = grid.proc_xy(2, 1);
        let windows: Vec<WindowRefs> = (0..8)
            .map(|i| WindowRefs::from_pairs([(if i % 2 == 0 { a } else { b }, 1)]))
            .collect();
        let trace = WindowedTrace::from_parts(grid, vec![windows]);
        let unb = MemorySpec::unbounded();
        let lom = crate::lomcds::lomcds_schedule(&trace, unb)
            .evaluate(&trace)
            .total();
        let grouped = grouped_schedule(&trace, unb, GroupMethod::LocalCenters)
            .evaluate(&trace)
            .total();
        assert!(grouped <= lom, "grouped {grouped} vs lomcds {lom}");
        // LOMCDS moves every window (7 moves); grouping should cut that.
        assert!(grouped < lom);
    }

    #[test]
    fn grouped_schedule_respects_capacity() {
        let grid = g();
        let want = |p: ProcId| {
            (0..4)
                .map(|_| WindowRefs::from_pairs([(p, 2)]))
                .collect::<Vec<_>>()
        };
        let trace = WindowedTrace::from_parts(
            grid,
            vec![want(grid.proc_xy(1, 1)), want(grid.proc_xy(1, 1))],
        );
        for method in [GroupMethod::LocalCenters, GroupMethod::GomcdsCenters] {
            let s = grouped_schedule(&trace, MemorySpec::uniform(1), method);
            assert_eq!(s.max_occupancy(), 1, "{method:?}");
        }
    }

    #[test]
    fn local_group_centers_carry_through_empty_groups() {
        let grid = g();
        let rs = rs_of(vec![
            WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1)]),
            WindowRefs::new(),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
        ]);
        let groups: Vec<Range<usize>> = vec![0..1, 1..2, 2..3];
        let centers = local_group_centers(&grid, &rs, &groups);
        assert_eq!(
            centers,
            vec![grid.proc_xy(2, 2), grid.proc_xy(2, 2), grid.proc_xy(3, 3)]
        );
    }
}
