//! Execution-window grouping (paper Section 4, Algorithm 3).
//!
//! If a datum's references barely change across consecutive windows, moving
//! it per window wastes traffic; merging those windows and re-centering
//! once can reduce total cost. Algorithm 3 is a greedy scan: keep extending
//! the current group with the next window as long as the total cost of the
//! resulting window set (reference traffic at each group's center plus
//! movement between group centers) does not increase; otherwise cut and
//! start a new group.
//!
//! The paper's Theorem 3 bounds what grouping can do — merging *two*
//! windows whose local optimal centers are the closest pair cannot reduce
//! cost — so the wins come from longer runs and from interaction with
//! movement cost; see [`crate::theory`].
//!
//! Besides the greedy (the paper's algorithm), [`optimal_grouping`] solves
//! the same problem exactly by dynamic programming over group boundaries in
//! `O(n³)` evaluated groups, used by ablation E to measure the greedy's
//! optimality gap.

use crate::cache::{CostCache, DatumCostCache};
use crate::cost::{cost_at, optimal_center};
use crate::gomcds::{gomcds_path, gomcds_path_ranges, Solver};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use core::ops::Range;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowRefs, WindowedTrace};
use serde::{Deserialize, Serialize};

/// How centers are computed for a grouped window set when costing a
/// grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupMethod {
    /// Each group's center is the local optimal center of its merged
    /// references (what Table 2 of the paper uses: "Algorithm 3 assuming
    /// using LOMCDS to compute centers").
    LocalCenters,
    /// Centers across groups chosen by the GOMCDS shortest path over the
    /// grouped windows.
    GomcdsCenters,
}

/// The local-center sequence for a grouping: each group's optimal center of
/// merged refs; empty groups keep the previous group's center (leading
/// empties take the first known center; all-empty defaults to `P0`).
pub fn local_group_centers(
    grid: &Grid,
    rs: &DataRefString,
    groups: &[Range<usize>],
) -> Vec<ProcId> {
    let mut centers: Vec<Option<ProcId>> = groups
        .iter()
        .map(|g| {
            let merged = rs.merged_range(g.start, g.end);
            (!merged.is_empty()).then(|| optimal_center(grid, &merged).0)
        })
        .collect();
    crate::lomcds::resolve_gaps_pub(&mut centers);
    centers
        .into_iter()
        .map(|c| c.unwrap_or(ProcId(0)))
        .collect()
}

/// [`local_group_centers`] served from the datum's cost cache: each group's
/// merged table comes from prefix-sum range queries instead of re-merging
/// reference lists.
pub fn local_group_centers_cached(
    cache: &DatumCostCache,
    groups: &[Range<usize>],
    ws: &mut Workspace,
) -> Vec<ProcId> {
    let mut centers: Vec<Option<ProcId>> = groups
        .iter()
        .map(|g| {
            (!cache.range_is_empty(g.start, g.end)).then(|| {
                cache
                    .optimal_center_range(g.start, g.end, &mut ws.axes, &mut ws.table)
                    .0
            })
        })
        .collect();
    crate::lomcds::resolve_gaps_pub(&mut centers);
    centers
        .into_iter()
        .map(|c| c.unwrap_or(ProcId(0)))
        .collect()
}

/// Total cost (reference + movement) of a grouping under a method,
/// unconstrained by memory. This is the paper's `COST(T)`.
pub fn cost_of_grouping(
    grid: &Grid,
    rs: &DataRefString,
    groups: &[Range<usize>],
    group_method: GroupMethod,
) -> u64 {
    match group_method {
        GroupMethod::LocalCenters => {
            let centers = local_group_centers(grid, rs, groups);
            let mut total = 0u64;
            for (g, &c) in groups.iter().zip(&centers) {
                let merged = rs.merged_range(g.start, g.end);
                total += cost_at(grid, &merged, c);
            }
            for pair in centers.windows(2) {
                total += grid.dist(pair[0], pair[1]);
            }
            total
        }
        GroupMethod::GomcdsCenters => {
            let regrouped = rs.regrouped(groups);
            gomcds_path(grid, &regrouped, Solver::DistanceTransform).1
        }
    }
}

/// [`cost_of_grouping`] served from the datum's cost cache: each candidate
/// group range costs `O(width + height + m)` regardless of how many
/// references it merges — this is what turns Algorithm 3's inner loop from
/// `O(r·m)` per evaluation into grid-sized work.
pub fn cost_of_grouping_cached(
    grid: &Grid,
    cache: &DatumCostCache,
    groups: &[Range<usize>],
    group_method: GroupMethod,
    ws: &mut Workspace,
) -> u64 {
    match group_method {
        GroupMethod::LocalCenters => {
            // A non-empty group's resolved center is its own optimal
            // center, so its reference cost is exactly the optimum the
            // argmin reports; empty groups carry a center forward and
            // contribute zero reference cost.
            let mut refcost = 0u64;
            let mut centers: Vec<Option<ProcId>> = groups
                .iter()
                .map(|g| {
                    (!cache.range_is_empty(g.start, g.end)).then(|| {
                        let (c, cost) =
                            cache.optimal_center_range(g.start, g.end, &mut ws.axes, &mut ws.table);
                        refcost += cost;
                        c
                    })
                })
                .collect();
            crate::lomcds::resolve_gaps_pub(&mut centers);
            let mut total = refcost;
            for pair in centers.windows(2) {
                let a = pair[0].unwrap_or(ProcId(0));
                let b = pair[1].unwrap_or(ProcId(0));
                total += grid.dist(a, b);
            }
            total
        }
        GroupMethod::GomcdsCenters => gomcds_path_ranges(grid, cache, groups, ws).1,
    }
}

/// Paper Algorithm 3: greedy grouping of one datum's windows.
///
/// Returns the grouping as consecutive half-open ranges partitioning
/// `0..num_windows`.
///
/// ```
/// use pim_array::grid::Grid;
/// use pim_trace::window::{DataRefString, WindowRefs};
/// use pim_sched::grouping::{greedy_grouping, GroupMethod};
///
/// let grid = Grid::new(4, 4);
/// // two identical windows near (1,1), then a far hotspot
/// let near = || WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2)]);
/// let rs = DataRefString::new(vec![
///     near(), near(),
///     WindowRefs::from_pairs([(grid.proc_xy(3, 3), 9)]),
/// ]);
/// let groups = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
/// assert_eq!(groups, vec![0..2, 2..3]); // merges the twins, keeps the hotspot apart
/// ```
pub fn greedy_grouping(grid: &Grid, rs: &DataRefString, method: GroupMethod) -> Vec<Range<usize>> {
    let n = rs.num_windows();
    let mut confirmed: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for j in 1..n {
        // T: current group start..j plus remaining singletons.
        // TNEW: current group extended to start..j+1 plus remaining
        // singletons. Keep the extension when not worse.
        let current = assemble(&confirmed, start..j, j, n);
        let extended = assemble(&confirmed, start..j + 1, j + 1, n);
        let keep = cost_of_grouping(grid, rs, &extended, method)
            <= cost_of_grouping(grid, rs, &current, method);
        if !keep {
            confirmed.push(start..j);
            start = j;
        }
    }
    confirmed.push(start..n);
    confirmed
}

/// [`greedy_grouping`] with every candidate grouping costed through the
/// datum's cost cache. Identical output; the `O(n)` cost evaluations per
/// extension step stop depending on reference counts.
///
/// One further exact saving: whichever grouping wins step `j` *is* (as a
/// partition of windows) the "current" grouping of step `j + 1` — keeping
/// the extension turns it into the new current group, cutting appends the
/// group and the next singleton takes over — so its cost is carried
/// forward and only the extension is evaluated per step.
pub fn greedy_grouping_cached(
    grid: &Grid,
    cache: &DatumCostCache,
    method: GroupMethod,
    ws: &mut Workspace,
) -> Vec<Range<usize>> {
    let n = cache.num_windows();
    let mut confirmed: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    let mut current_cost: Option<u64> = None;
    for j in 1..n {
        let cur_cost = current_cost.unwrap_or_else(|| {
            let current = assemble(&confirmed, start..j, j, n);
            cost_of_grouping_cached(grid, cache, &current, method, ws)
        });
        let extended = assemble(&confirmed, start..j + 1, j + 1, n);
        let ext_cost = cost_of_grouping_cached(grid, cache, &extended, method, ws);
        if ext_cost <= cur_cost {
            current_cost = Some(ext_cost);
        } else {
            confirmed.push(start..j);
            start = j;
            current_cost = Some(cur_cost);
        }
    }
    confirmed.push(start..n);
    confirmed
}

/// `confirmed ++ [current] ++ singletons rest..n`.
fn assemble(
    confirmed: &[Range<usize>],
    current: Range<usize>,
    rest: usize,
    n: usize,
) -> Vec<Range<usize>> {
    let mut v = Vec::with_capacity(confirmed.len() + 1 + (n - rest));
    v.extend(confirmed.iter().cloned());
    v.push(current);
    v.extend((rest..n).map(|i| i..i + 1));
    v
}

/// Exact minimum-cost grouping for the [`GroupMethod::LocalCenters`] model
/// via DP over group boundaries.
///
/// Key observation: a window with no references contributes nothing to any
/// group's merged reference string, and under the carry-forward center rule
/// it never induces movement on its own. The cost of a grouping therefore
/// depends only on how the *referenced* windows are partitioned into
/// consecutive runs. The DP runs over referenced windows (`t` of them) in
/// `O(t³)`; empty windows are attached to the preceding group afterwards.
pub fn optimal_grouping(grid: &Grid, rs: &DataRefString) -> (Vec<Range<usize>>, u64) {
    let n = rs.num_windows();
    let refd: Vec<usize> = (0..n).filter(|&w| !rs.window(w).is_empty()).collect();
    let t = refd.len();
    if t == 0 {
        #[allow(clippy::single_range_in_vec_init)] // one group covering 0..n is the intent
        return (vec![0..n], 0);
    }

    // Merged cost and center for every run refd[a]..=refd[b].
    let mut centers = vec![vec![ProcId(0); t]; t];
    let mut costs = vec![vec![0u64; t]; t];
    for a in 0..t {
        let mut merged = WindowRefs::new();
        for b in a..t {
            merged.merge(rs.window(refd[b]));
            let (c, cost) = optimal_center(grid, &merged);
            centers[a][b] = c;
            costs[a][b] = cost;
        }
    }

    const UNSET: u64 = u64::MAX;
    // dp[a][b]: best cost covering referenced windows 0..=b, last run a..=b.
    let mut dp = vec![vec![UNSET; t]; t];
    let mut parent: Vec<Vec<Option<usize>>> = vec![vec![None; t]; t];
    for b in 0..t {
        for a in 0..=b {
            if a == 0 {
                dp[a][b] = costs[a][b];
                continue;
            }
            let mut best = UNSET;
            let mut best_k = None;
            for k in 0..a {
                if dp[k][a - 1] == UNSET {
                    continue;
                }
                let mv = grid.dist(centers[k][a - 1], centers[a][b]);
                let cand = dp[k][a - 1] + costs[a][b] + mv;
                if cand < best {
                    best = cand;
                    best_k = Some(k);
                }
            }
            dp[a][b] = best;
            parent[a][b] = best_k;
        }
    }

    let (mut a, mut best) = (0usize, UNSET);
    for cand in 0..t {
        if dp[cand][t - 1] < best {
            best = dp[cand][t - 1];
            a = cand;
        }
    }

    // Reconstruct runs in referenced-index space.
    let mut runs: Vec<(usize, usize)> = Vec::new(); // inclusive (a, b)
    let mut b = t - 1;
    loop {
        runs.push((a, b));
        match parent[a][b] {
            Some(k) => {
                b = a - 1;
                a = k;
            }
            None => break,
        }
    }
    runs.reverse();

    // Map back to full-window ranges: each group starts at the previous
    // group's end; empty windows attach to the preceding group (leading
    // empties to the first group), adding no cost.
    let mut groups = Vec::with_capacity(runs.len());
    let mut start = 0usize;
    for (i, &(ra, rb)) in runs.iter().enumerate() {
        let _ = ra;
        let end = if i + 1 < runs.len() {
            refd[runs[i + 1].0]
        } else {
            n
        };
        debug_assert!(refd[rb] < end);
        groups.push(start..end);
        start = end;
    }
    (groups, best)
}

/// Schedule the whole trace with greedy grouping, deciding and placing with
/// the same [`GroupMethod`]. See [`grouped_schedule_with`].
pub fn grouped_schedule(trace: &WindowedTrace, spec: MemorySpec, method: GroupMethod) -> Schedule {
    grouped_schedule_with(trace, spec, method, method)
}

/// Schedule the whole trace with greedy grouping (the paper's Table 2
/// pipeline): per datum, group windows with Algorithm 3 costed by the
/// `decide` method, then place each group's center with the `place` method
/// under the memory constraint. The paper's Table 2 runs Algorithm 3
/// "assuming using LOMCDS to compute centers" (`decide = LocalCenters`) and
/// then reports each scheduler on the grouped windows.
///
/// With [`GroupMethod::LocalCenters`] placement, capacity is resolved
/// window-major in ascending datum order like LOMCDS; a datum entering a
/// group claims a slot in *every* window of the group (it stays put
/// throughout). With [`GroupMethod::GomcdsCenters`] placement, data are
/// processed in id order and each solves a masked shortest path over its
/// grouped windows like GOMCDS.
///
/// # Panics
/// Panics if the array's total memory cannot hold every datum.
pub fn grouped_schedule_with(
    trace: &WindowedTrace,
    spec: MemorySpec,
    decide: GroupMethod,
    place: GroupMethod,
) -> Schedule {
    let cache = CostCache::build(trace);
    let mut ws = Workspace::new();
    grouped_schedule_with_cached(trace, spec, decide, place, &cache, &mut ws)
}

/// [`grouped_schedule_with`] served from a shared per-trace cost cache:
/// grouping decisions, group tables, and masked GOMCDS placement all use
/// prefix-sum range queries. Bit-identical to the uncached reference.
pub fn grouped_schedule_with_cached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    decide: GroupMethod,
    place: GroupMethod,
    cache: &CostCache,
    ws: &mut Workspace,
) -> Schedule {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    assert!(
        spec.feasible(&grid, nd),
        "memory spec cannot hold {nd} data items on {grid}"
    );

    let groupings: Vec<Vec<Range<usize>>> = (0..nd)
        .map(|d| greedy_grouping_cached(&grid, cache.datum(DataId(d as u32)), decide, ws))
        .collect();
    let mut mems: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();
    let mut centers = vec![vec![ProcId(0); nw]; nd];

    match place {
        GroupMethod::LocalCenters => {
            // Per-datum unconstrained group centers, used as anchors.
            let desired: Vec<Vec<ProcId>> = (0..nd)
                .map(|d| {
                    local_group_centers_cached(cache.datum(DataId(d as u32)), &groupings[d], ws)
                })
                .collect();
            // Map window → group index per datum.
            let group_of: Vec<Vec<usize>> = groupings
                .iter()
                .map(|gs| {
                    let mut v = vec![0usize; nw];
                    for (gi, g) in gs.iter().enumerate() {
                        for w in g.clone() {
                            v[w] = gi;
                        }
                    }
                    v
                })
                .collect();
            for w in 0..nw {
                for d in 0..nd {
                    let gi = group_of[d][w];
                    let g = &groupings[d][gi];
                    if g.start != w {
                        continue; // group already placed at its first window
                    }
                    let dc = cache.datum(DataId(d as u32));
                    let anchor = if w == 0 {
                        desired[d][gi]
                    } else {
                        centers[d][w - 1]
                    };
                    if dc.range_is_empty(g.start, g.end) {
                        // preference order: nearest to the anchor
                        let anchor_refs = WindowRefs::from_pairs([(anchor, 1)]);
                        crate::cost::cost_table_with(
                            &grid,
                            &anchor_refs,
                            &mut ws.axes,
                            &mut ws.table,
                        );
                    } else {
                        dc.range_table(g.start, g.end, &mut ws.axes, &mut ws.table);
                    }
                    let list = crate::capacity::ProcessorList::from_cost_table(&ws.table);
                    let chosen = list
                        .iter()
                        .map(|(p, _)| p)
                        .find(|&p| g.clone().all(|wi| mems[wi].has_room(p)));
                    match chosen {
                        Some(p) => {
                            for wi in g.clone() {
                                mems[wi].allocate(p).expect("room checked");
                                centers[d][wi] = p;
                            }
                        }
                        None => {
                            // Memory too fragmented for the whole group to
                            // share one processor (only possible with zero
                            // slack): degrade to per-window placement along
                            // the group's preference order. The group's
                            // cost benefit is lost for this datum but the
                            // schedule stays feasible.
                            for wi in g.clone() {
                                let p = list
                                    .iter()
                                    .map(|(p, _)| p)
                                    .find(|&p| mems[wi].has_room(p))
                                    .expect(
                                        "every window has a free slot: one per datum is allocated",
                                    );
                                mems[wi].allocate(p).expect("room checked");
                                centers[d][wi] = p;
                            }
                        }
                    }
                }
            }
        }
        GroupMethod::GomcdsCenters => {
            // Whole-path allocation is greedy across every window at once,
            // so processing order matters more than for the window-major
            // schedulers; heaviest data first keeps the big reference
            // volumes at their optimal centers and lets light data adapt
            // (deterministic: ties broken by ascending id).
            let mut order: Vec<usize> = (0..nd).collect();
            order.sort_by_key(|&d| (u64::MAX - trace.refs(DataId(d as u32)).total_volume(), d));
            for d in order {
                let dc = cache.datum(DataId(d as u32));
                let groups = &groupings[d];
                // Build group-level masks: a group slot is full when any of
                // its windows lacks room.
                let group_mems: Vec<MemoryMap> = groups
                    .iter()
                    .map(|g| {
                        let mut m = MemoryMap::new(&grid, spec);
                        for p in grid.procs() {
                            if !g.clone().all(|wi| mems[wi].has_room(p)) {
                                // mark full by exhausting its capacity
                                while m.has_room(p) {
                                    m.allocate(p).expect("has room");
                                }
                            }
                        }
                        m
                    })
                    .collect();
                match crate::gomcds::solve_masked_ranges(&grid, dc, groups, &group_mems, ws) {
                    Some(path) => {
                        for (gi, g) in groups.iter().enumerate() {
                            for wi in g.clone() {
                                mems[wi].allocate(path[gi]).expect("mask guaranteed room");
                                centers[d][wi] = path[gi];
                            }
                        }
                    }
                    None => {
                        // No processor is free across every window of some
                        // group (zero-slack fragmentation): fall back to an
                        // ungrouped masked path for this datum, which only
                        // needs one free slot per individual window.
                        let path = crate::gomcds::solve_masked_path_cached(&grid, dc, &mems, ws)
                            .expect("every window has a free slot: one per datum is allocated");
                        for (wi, &p) in path.iter().enumerate() {
                            mems[wi].allocate(p).expect("mask guaranteed room");
                            centers[d][wi] = p;
                        }
                    }
                }
            }
        }
    }
    Schedule::new(grid, centers)
}

/// Pre-cache reference implementation of [`grouped_schedule_with`] — every
/// merged range re-walks the reference lists. Bit-identical; kept for the
/// equivalence property tests and benches.
pub fn grouped_schedule_with_uncached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    decide: GroupMethod,
    place: GroupMethod,
) -> Schedule {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    assert!(
        spec.feasible(&grid, nd),
        "memory spec cannot hold {nd} data items on {grid}"
    );

    let groupings: Vec<Vec<Range<usize>>> = (0..nd)
        .map(|d| greedy_grouping(&grid, trace.refs(DataId(d as u32)), decide))
        .collect();
    let mut mems: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();
    let mut centers = vec![vec![ProcId(0); nw]; nd];

    match place {
        GroupMethod::LocalCenters => {
            // Per-datum unconstrained group centers, used as anchors.
            let desired: Vec<Vec<ProcId>> = (0..nd)
                .map(|d| local_group_centers(&grid, trace.refs(DataId(d as u32)), &groupings[d]))
                .collect();
            // Map window → group index per datum.
            let group_of: Vec<Vec<usize>> = groupings
                .iter()
                .map(|gs| {
                    let mut v = vec![0usize; nw];
                    for (gi, g) in gs.iter().enumerate() {
                        for w in g.clone() {
                            v[w] = gi;
                        }
                    }
                    v
                })
                .collect();
            for w in 0..nw {
                for d in 0..nd {
                    let gi = group_of[d][w];
                    let g = &groupings[d][gi];
                    if g.start != w {
                        continue; // group already placed at its first window
                    }
                    let rs = trace.refs(DataId(d as u32));
                    let merged = rs.merged_range(g.start, g.end);
                    let anchor = if w == 0 {
                        desired[d][gi]
                    } else {
                        centers[d][w - 1]
                    };
                    let mut table = Vec::new();
                    let list = if merged.is_empty() {
                        // preference order: nearest to the anchor
                        let anchor_refs = WindowRefs::from_pairs([(anchor, 1)]);
                        crate::cost::cost_table(&grid, &anchor_refs, &mut table);
                        crate::capacity::ProcessorList::from_cost_table(&table)
                    } else {
                        crate::cost::cost_table(&grid, &merged, &mut table);
                        crate::capacity::ProcessorList::from_cost_table(&table)
                    };
                    let chosen = list
                        .iter()
                        .map(|(p, _)| p)
                        .find(|&p| g.clone().all(|wi| mems[wi].has_room(p)));
                    match chosen {
                        Some(p) => {
                            for wi in g.clone() {
                                mems[wi].allocate(p).expect("room checked");
                                centers[d][wi] = p;
                            }
                        }
                        None => {
                            // Memory too fragmented for the whole group to
                            // share one processor (only possible with zero
                            // slack): degrade to per-window placement along
                            // the group's preference order. The group's
                            // cost benefit is lost for this datum but the
                            // schedule stays feasible.
                            for wi in g.clone() {
                                let p = list
                                    .iter()
                                    .map(|(p, _)| p)
                                    .find(|&p| mems[wi].has_room(p))
                                    .expect(
                                        "every window has a free slot: one per datum is allocated",
                                    );
                                mems[wi].allocate(p).expect("room checked");
                                centers[d][wi] = p;
                            }
                        }
                    }
                }
            }
        }
        GroupMethod::GomcdsCenters => {
            // Whole-path allocation is greedy across every window at once,
            // so processing order matters more than for the window-major
            // schedulers; heaviest data first keeps the big reference
            // volumes at their optimal centers and lets light data adapt
            // (deterministic: ties broken by ascending id).
            let mut order: Vec<usize> = (0..nd).collect();
            order.sort_by_key(|&d| (u64::MAX - trace.refs(DataId(d as u32)).total_volume(), d));
            for d in order {
                let rs = trace.refs(DataId(d as u32));
                let groups = &groupings[d];
                let regrouped = rs.regrouped(groups);
                // Build group-level masks: a group slot is full when any of
                // its windows lacks room.
                let group_mems: Vec<MemoryMap> = groups
                    .iter()
                    .map(|g| {
                        let mut m = MemoryMap::new(&grid, spec);
                        for p in grid.procs() {
                            if !g.clone().all(|wi| mems[wi].has_room(p)) {
                                // mark full by exhausting its capacity
                                while m.has_room(p) {
                                    m.allocate(p).expect("has room");
                                }
                            }
                        }
                        m
                    })
                    .collect();
                match crate::gomcds::solve_masked_path(&grid, &regrouped, &group_mems) {
                    Some(path) => {
                        for (gi, g) in groups.iter().enumerate() {
                            for wi in g.clone() {
                                mems[wi].allocate(path[gi]).expect("mask guaranteed room");
                                centers[d][wi] = path[gi];
                            }
                        }
                    }
                    None => {
                        // No processor is free across every window of some
                        // group (zero-slack fragmentation): fall back to an
                        // ungrouped masked path for this datum, which only
                        // needs one free slot per individual window.
                        let path = crate::gomcds::solve_masked_path(&grid, rs, &mems)
                            .expect("every window has a free slot: one per datum is allocated");
                        for (wi, &p) in path.iter().enumerate() {
                            mems[wi].allocate(p).expect("mask guaranteed room");
                            centers[d][wi] = p;
                        }
                    }
                }
            }
        }
    }
    Schedule::new(grid, centers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::window::WindowRefs;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    fn rs_of(windows: Vec<WindowRefs>) -> DataRefString {
        DataRefString::new(windows)
    }

    #[test]
    fn identical_windows_group_into_one() {
        let grid = g();
        let w = || WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1), (grid.proc_xy(3, 2), 1)]);
        let rs = rs_of(vec![w(), w(), w(), w()]);
        let groups = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
        assert_eq!(groups, vec![0..4]);
    }

    #[test]
    fn far_apart_hotspots_stay_separate() {
        let grid = g();
        let rs = rs_of(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 10)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 10)]),
        ]);
        let groups = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
        // Grouping would cost 10·min-dist ≥ 30; separate costs movement 6.
        assert_eq!(groups, vec![0..1, 1..2]);
    }

    #[test]
    fn grouping_never_increases_cost() {
        let grid = g();
        let rs = rs_of(vec![
            WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2)]),
            WindowRefs::from_pairs([(grid.proc_xy(2, 1), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(1, 2), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 5)]),
        ]);
        for method in [GroupMethod::LocalCenters, GroupMethod::GomcdsCenters] {
            let singletons: Vec<Range<usize>> = (0..4).map(|i| i..i + 1).collect();
            let before = cost_of_grouping(&grid, &rs, &singletons, method);
            let groups = greedy_grouping(&grid, &rs, method);
            let after = cost_of_grouping(&grid, &rs, &groups, method);
            assert!(after <= before, "{method:?}: {after} > {before}");
        }
    }

    #[test]
    fn optimal_grouping_never_worse_than_greedy() {
        let grid = g();
        let rs = rs_of(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3)]),
            WindowRefs::from_pairs([(grid.proc_xy(1, 0), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 1), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 4)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 2), 1)]),
        ]);
        let greedy = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
        let greedy_cost = cost_of_grouping(&grid, &rs, &greedy, GroupMethod::LocalCenters);
        let (opt_groups, opt_cost) = optimal_grouping(&grid, &rs);
        assert!(opt_cost <= greedy_cost);
        assert_eq!(
            cost_of_grouping(&grid, &rs, &opt_groups, GroupMethod::LocalCenters),
            opt_cost,
            "reported optimum must match its own grouping's cost"
        );
    }

    #[test]
    fn groups_partition_windows() {
        let grid = g();
        let rs = rs_of(
            (0..7)
                .map(|i| WindowRefs::from_pairs([(ProcId(i % 16), 1 + i % 3)]))
                .collect(),
        );
        for method in [GroupMethod::LocalCenters, GroupMethod::GomcdsCenters] {
            let groups = greedy_grouping(&grid, &rs, method);
            let mut expect = 0;
            for r in &groups {
                assert_eq!(r.start, expect);
                assert!(r.end > r.start);
                expect = r.end;
            }
            assert_eq!(expect, 7);
        }
    }

    #[test]
    fn grouped_schedule_no_worse_than_lomcds_on_oscillation() {
        let grid = g();
        // references ping-pong between close processors: per-window moves
        // are pure waste; grouping should collapse them.
        let a = grid.proc_xy(1, 1);
        let b = grid.proc_xy(2, 1);
        let windows: Vec<WindowRefs> = (0..8)
            .map(|i| WindowRefs::from_pairs([(if i % 2 == 0 { a } else { b }, 1)]))
            .collect();
        let trace = WindowedTrace::from_parts(grid, vec![windows]);
        let unb = MemorySpec::unbounded();
        let lom = crate::lomcds::lomcds_schedule(&trace, unb)
            .evaluate(&trace)
            .total();
        let grouped = grouped_schedule(&trace, unb, GroupMethod::LocalCenters)
            .evaluate(&trace)
            .total();
        assert!(grouped <= lom, "grouped {grouped} vs lomcds {lom}");
        // LOMCDS moves every window (7 moves); grouping should cut that.
        assert!(grouped < lom);
    }

    #[test]
    fn grouped_schedule_respects_capacity() {
        let grid = g();
        let want = |p: ProcId| {
            (0..4)
                .map(|_| WindowRefs::from_pairs([(p, 2)]))
                .collect::<Vec<_>>()
        };
        let trace = WindowedTrace::from_parts(
            grid,
            vec![want(grid.proc_xy(1, 1)), want(grid.proc_xy(1, 1))],
        );
        for method in [GroupMethod::LocalCenters, GroupMethod::GomcdsCenters] {
            let s = grouped_schedule(&trace, MemorySpec::uniform(1), method);
            assert_eq!(s.max_occupancy(), 1, "{method:?}");
        }
    }

    #[test]
    fn local_group_centers_carry_through_empty_groups() {
        let grid = g();
        let rs = rs_of(vec![
            WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1)]),
            WindowRefs::new(),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
        ]);
        let groups: Vec<Range<usize>> = vec![0..1, 1..2, 2..3];
        let centers = local_group_centers(&grid, &rs, &groups);
        assert_eq!(
            centers,
            vec![grid.proc_xy(2, 2), grid.proc_xy(2, 2), grid.proc_xy(3, 3)]
        );
    }
}
