//! L1 distance transform on the processor grid.
//!
//! The GOMCDS dynamic program repeatedly needs, for a function `f` over
//! processors, the relaxed function
//!
//! ```text
//! g(k) = min_j ( f(j) + dist_L1(j, k) )
//! ```
//!
//! — "the cheapest way to be at `k` if you were allowed to start anywhere
//! and pay Manhattan distance to get there". Computing it naively is
//! `O(m²)` per window. Because the metric is L1 on a grid, the classic
//! two-pass chamfer sweep computes it exactly in `O(m)`:
//!
//! * forward pass (row-major) relaxes from the west and north neighbours;
//! * backward pass (reverse row-major) relaxes from the east and south.
//!
//! Correctness: any shortest L1 path from `j` to `k` can be decomposed into
//! a monotone prefix handled by one sweep direction and a monotone suffix
//! handled by the other; two sweeps therefore reach every processor with
//! its exact minimum. The property tests compare against the naive `O(m²)`
//! form on random inputs.

use pim_array::grid::Grid;

/// Naive `O(m²)` reference implementation of the relaxation.
pub fn l1_relax_naive(grid: &Grid, input: &[u64], out: &mut Vec<u64>) {
    l1_relax_naive_weighted(grid, input, 1, out)
}

/// Naive relaxation with per-hop cost `step`:
/// `out[k] = min_j input[j] + step · dist(j, k)`.
///
/// `step` models the volume of the datum being moved (the paper's unit
/// model is `step = 1`); the `sweep_movement` ablation uses larger values.
pub fn l1_relax_naive_weighted(grid: &Grid, input: &[u64], step: u64, out: &mut Vec<u64>) {
    assert_eq!(input.len(), grid.num_procs());
    out.clear();
    out.extend(grid.procs().map(|k| {
        grid.procs()
            .map(|j| input[j.index()].saturating_add(step.saturating_mul(grid.dist(j, k))))
            .min()
            .expect("non-empty grid")
    }));
}

/// Two-pass `O(m)` L1 distance transform: `out[k] = min_j input[j] + dist(j,k)`.
pub fn l1_relax(grid: &Grid, input: &[u64], out: &mut Vec<u64>) {
    l1_relax_weighted(grid, input, 1, out)
}

/// Two-pass transform with per-hop cost `step` (exact for any positive
/// weight, since the weighted metric is still `step × L1`).
pub fn l1_relax_weighted(grid: &Grid, input: &[u64], step: u64, out: &mut Vec<u64>) {
    assert_eq!(input.len(), grid.num_procs());
    let w = grid.width() as usize;
    let h = grid.height() as usize;
    out.clear();
    out.extend_from_slice(input);

    // Forward: west and north neighbours already finalized for this pass.
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x > 0 {
                let c = out[i - 1].saturating_add(step);
                if c < out[i] {
                    out[i] = c;
                }
            }
            if y > 0 {
                let c = out[i - w].saturating_add(step);
                if c < out[i] {
                    out[i] = c;
                }
            }
        }
    }
    // Backward: east and south.
    for y in (0..h).rev() {
        for x in (0..w).rev() {
            let i = y * w + x;
            if x + 1 < w {
                let c = out[i + 1].saturating_add(step);
                if c < out[i] {
                    out[i] = c;
                }
            }
            if y + 1 < h {
                let c = out[i + w].saturating_add(step);
                if c < out[i] {
                    out[i] = c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::INF;

    #[test]
    fn relax_single_source() {
        let g = Grid::new(4, 4);
        let mut input = vec![INF; 16];
        input[g.proc_xy(1, 1).index()] = 0;
        let mut fast = Vec::new();
        l1_relax(&g, &input, &mut fast);
        for p in g.procs() {
            assert_eq!(fast[p.index()], g.dist(g.proc_xy(1, 1), p));
        }
    }

    #[test]
    fn relax_matches_naive_on_patterns() {
        let g = Grid::new(5, 3);
        let patterns: Vec<Vec<u64>> = vec![
            vec![0; 15],
            (0..15u64).collect(),
            (0..15u64).rev().collect(),
            vec![7, INF, 3, INF, INF, 0, 2, INF, 9, 1, INF, INF, 4, 4, 4],
        ];
        for input in patterns {
            let mut fast = Vec::new();
            let mut naive = Vec::new();
            l1_relax(&g, &input, &mut fast);
            l1_relax_naive(&g, &input, &mut naive);
            assert_eq!(fast, naive, "input {input:?}");
        }
    }

    #[test]
    fn relax_is_idempotent_on_metric_functions() {
        // Relaxing an already-relaxed function changes nothing
        // (1-Lipschitz fixed point).
        let g = Grid::new(4, 4);
        let input: Vec<u64> = (0..16).map(|i| (i * 37 % 11) as u64).collect();
        let mut once = Vec::new();
        let mut twice = Vec::new();
        l1_relax(&g, &input, &mut once);
        l1_relax(&g, &once, &mut twice);
        assert_eq!(once, twice);
    }

    #[test]
    fn relax_never_increases() {
        let g = Grid::new(3, 3);
        let input: Vec<u64> = vec![5, 1, 9, 2, 8, 3, 7, 4, 6];
        let mut out = Vec::new();
        l1_relax(&g, &input, &mut out);
        for i in 0..9 {
            assert!(out[i] <= input[i]);
        }
    }

    #[test]
    fn one_by_one_grid() {
        let g = Grid::new(1, 1);
        let mut out = Vec::new();
        l1_relax(&g, &[42], &mut out);
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic]
    fn wrong_input_length_panics() {
        let g = Grid::new(2, 2);
        let mut out = Vec::new();
        l1_relax(&g, &[0, 1], &mut out);
    }

    #[test]
    fn weighted_relax_matches_naive_weighted() {
        let g = Grid::new(4, 3);
        let input: Vec<u64> = (0..12u64).map(|i| i * 13 % 19).collect();
        for step in [1u64, 2, 5, 100] {
            let mut fast = Vec::new();
            let mut naive = Vec::new();
            l1_relax_weighted(&g, &input, step, &mut fast);
            l1_relax_naive_weighted(&g, &input, step, &mut naive);
            assert_eq!(fast, naive, "step {step}");
        }
    }

    #[test]
    fn weighted_relax_scales_distances() {
        let g = Grid::new(3, 3);
        let mut input = vec![INF; 9];
        input[0] = 0;
        let mut out = Vec::new();
        l1_relax_weighted(&g, &input, 7, &mut out);
        for p in g.procs() {
            assert_eq!(out[p.index()], 7 * g.dist(pim_array::grid::ProcId(0), p));
        }
    }
}
