//! Precedence-aware scheduling: list-scheduling priorities over a task
//! DAG, feeding the paper's center-selection machinery.
//!
//! The paper's model releases every reference at window start, so center
//! selection only minimizes *communication volume*. Once a
//! [`TaskDag`] gates message release (see `pim_sim`'s completion-triggered
//! simulation), the *critical path* through the task graph matters too: a
//! task on the critical path should have its references served from
//! nearby centers so it finishes — and releases its successors — sooner.
//!
//! Two registry strategies implement this, following the two classic
//! priority families of the DAG-scheduling literature (and of the related
//! `sched_sim` repos' global-EDF / decomposition schedulers):
//!
//! * `list-scds` ([`ListScdsScheduler`]) — **critical-path list
//!   scheduling**: task priority is the *upward rank* (longest
//!   WCET-weighted path from the task to any sink).
//! * `edf-scds` ([`EdfScdsScheduler`]) — **deadline ordering**: each
//!   task's latest-start deadline is derived from the DAG span; priority
//!   is deadline urgency (earliest deadline first).
//!
//! Both turn task priorities into per-`(datum, window)` **reference
//! weights** `ω ∈ 1..=4` and solve each datum's layered shortest path with
//! its window node costs scaled by `ω` — pulling the centers of
//! critical-task data toward their referencing processors — and replay
//! bounded-capacity allocation in priority order, so the most urgent
//! tasks' data claim contested slots first. Placement and execution order
//! are co-decided.
//!
//! The result is **guarded**: both strategies also compute the plain
//! GOMCDS schedule and return whichever the analytic completion estimator
//! ([`estimate_completion`]) scores better, so attaching a DAG never
//! trades away an estimated-completion win for nothing. Without a DAG
//! (`SchedContext::dag() == None`) both strategies *are* GOMCDS —
//! bit-identical, by delegation — so the precedence-free path is pinned by
//! the same conformance proptests as every other scheduler.

use crate::context::SchedContext;
use crate::cost::{cost_table_with, INF};
use crate::error::{ensure_feasible, exhausted, SchedError};
use crate::registry::{GomcdsScheduler, Scheduler};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::MemoryMap;
use pim_trace::dag::TaskDag;
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowedTrace};

/// How task priorities are derived from the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityMode {
    /// Upward rank: the longest WCET-weighted path from the task to any
    /// sink (classic HEFT/list-scheduling rank). Higher = more critical.
    CriticalPath,
    /// Deadline urgency: the task's latest-start deadline against the DAG
    /// span, earliest deadline first. Equals the upward rank minus the
    /// task's own WCET (its successor chain length).
    Deadline,
}

/// Per-task priorities under `mode`; higher means scheduled (and
/// weighted) more urgently. Deterministic: derived from the DAG's
/// precomputed topological order.
pub fn task_priorities(dag: &TaskDag, mode: PriorityMode) -> Vec<u64> {
    let n = dag.num_tasks();
    let mut up = vec![0u64; n];
    for &t in dag.topo_order().iter().rev() {
        let tail = dag
            .succs(t)
            .iter()
            .map(|&s| up[s as usize])
            .max()
            .unwrap_or(0);
        up[t as usize] = dag.task(t).wcet.max(1).saturating_add(tail);
    }
    match mode {
        PriorityMode::CriticalPath => up,
        // deadline = span − (up − wcet); urgency = span − deadline =
        // up − wcet: a task's priority is the length of what still runs
        // after it. (A long task with no successors is top-rank under
        // CriticalPath but least urgent here.)
        PriorityMode::Deadline => (0..n)
            .map(|t| up[t] - dag.task(t as u32).wcet.max(1))
            .collect(),
    }
}

/// Scale factor applied to a window's reference costs: `1 + 3·pri/pri_max`
/// in integers, so ω ∈ `1..=4` and a DAG whose tasks are all equally
/// critical degenerates to uniform weights.
fn weight(pri: u64, pri_max: u64) -> u64 {
    1 + (3u64.saturating_mul(pri)) / pri_max.max(1)
}

/// One datum's layered shortest path with per-window node costs scaled by
/// `weights[w]` (movement stays weight 1). Same recurrence and — crucially
/// — the same tie-breaks as the GOMCDS solver: lowest-id sink argmin,
/// lowest-id backtrack predecessor. `masks` marks full processors;
/// returns `None` when no feasible path exists.
fn solve_weighted(
    grid: &Grid,
    rs: &DataRefString,
    weights: &[u64],
    masks: Option<&[MemoryMap]>,
    ws: &mut Workspace,
) -> Option<(Vec<ProcId>, u64)> {
    let m = grid.num_procs();
    let nw = rs.num_windows();
    let Workspace {
        axes,
        dp,
        node,
        relaxed,
        nodes_all,
        ..
    } = ws;
    dp.clear();
    dp.reserve(nw * m);
    nodes_all.clear();
    nodes_all.reserve(nw * m);

    for w in 0..nw {
        cost_table_with(grid, rs.window(w), axes, node);
        let scale = weights[w];
        for slot in node.iter_mut() {
            *slot = slot.saturating_mul(scale);
        }
        if let Some(maps) = masks {
            for (k, slot) in node.iter_mut().enumerate() {
                if !maps[w].has_room(ProcId(k as u32)) {
                    *slot = INF;
                }
            }
        }
        nodes_all.extend_from_slice(node);
        if w == 0 {
            dp.extend_from_slice(node);
        } else {
            {
                let prev = &dp[(w - 1) * m..w * m];
                crate::dt::l1_relax_weighted(grid, prev, 1, relaxed);
            }
            for k in 0..m {
                dp.push(relaxed[k].saturating_add(node[k]));
            }
        }
    }

    let last = &dp[(nw - 1) * m..nw * m];
    let (mut k, &best) = last
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("non-empty grid");
    if best >= INF {
        return None;
    }

    let mut path = vec![ProcId(0); nw];
    path[nw - 1] = ProcId(k as u32);
    for w in (1..nw).rev() {
        let noderow = &nodes_all[w * m..(w + 1) * m];
        let need = dp[w * m + k] - noderow[k];
        let prev_row = &dp[(w - 1) * m..w * m];
        let kp = grid.point_of(ProcId(k as u32));
        let mut found = None;
        for j in 0..m {
            let hop = grid.point_of(ProcId(j as u32)).l1_dist(kp);
            if prev_row[j].saturating_add(hop) == need {
                found = Some(j);
                break;
            }
        }
        k = found.expect("dp backtrack must find a predecessor");
        path[w - 1] = ProcId(k as u32);
    }
    Some((path, best))
}

/// Analytic estimate of the completion cycles `schedule` achieves under
/// `dag`-gated release (the model `pim_sim`'s completion-triggered
/// simulator implements): within a window, a task becomes ready when its
/// intra-window predecessors finish and takes as long as its slowest
/// message (L1 distance + volume − 1, contention ignored); a window
/// completes when its last task finishes, and windows — separated by the
/// barrier — sum. Cheap enough to score candidate schedules inside a
/// scheduler; the simulator stays the ground truth.
pub fn estimate_completion(trace: &WindowedTrace, schedule: &Schedule, dag: &TaskDag) -> u64 {
    let grid = trace.grid();
    let nw = trace.num_windows();
    let mut finish = vec![0u64; dag.num_tasks()];
    let mut total = 0u64;
    for w in 0..nw {
        let mut window_end = 0u64;
        for &t in dag.topo_order() {
            let task = dag.task(t);
            if task.window as usize != w {
                continue;
            }
            let ready = dag
                .preds(t)
                .iter()
                .filter(|&&p| dag.task(p).window as usize == w)
                .map(|&p| finish[p as usize])
                .max()
                .unwrap_or(0);
            let mut span = 0u64;
            for &d in &task.data {
                let center = schedule.center(d, w);
                let cp = grid.point_of(center);
                for r in trace.refs(d).window(w).iter() {
                    if r.proc != center {
                        let dist = grid.point_of(r.proc).l1_dist(cp);
                        span = span.max(dist + r.count as u64 - 1);
                    }
                }
                if w + 1 < nw {
                    let next = schedule.center(d, w + 1);
                    if next != center {
                        span = span.max(cp.l1_dist(grid.point_of(next)));
                    }
                }
            }
            finish[t as usize] = ready + span;
            window_end = window_end.max(finish[t as usize]);
        }
        total += window_end;
    }
    total
}

/// The precedence-aware placement itself: weighted per-datum paths,
/// capacity replayed in task-priority order. Deliberately one sequential,
/// raw-reference-string code path — cached/uncached/parallel contexts all
/// land here, so the with-DAG output is bit-identical across execution
/// modes by construction.
fn precedence_schedule(
    ctx: &mut SchedContext,
    trace: &WindowedTrace,
    dag: &TaskDag,
    mode: PriorityMode,
) -> Result<Schedule, SchedError> {
    let grid = ctx.grid();
    let spec = ctx.spec();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    ensure_feasible(&grid, spec, nd)?;

    let pri = task_priorities(dag, mode);
    let pri_max = pri.iter().copied().max().unwrap_or(0);

    // Replay order: most critical owning task first, then datum id.
    let mut order: Vec<(core::cmp::Reverse<u64>, DataId)> = trace
        .iter_data()
        .map(|(d, _)| {
            let key = (0..nw as u32)
                .filter_map(|w| dag.owner(w, d))
                .map(|t| pri[t as usize])
                .max()
                .unwrap_or(0);
            (core::cmp::Reverse(key), d)
        })
        .collect();
    order.sort_unstable();

    let bounded = spec.capacity_per_proc != u32::MAX;
    let mut masks: Vec<MemoryMap> = if bounded {
        (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect()
    } else {
        Vec::new()
    };

    let ws = ctx.workspace();
    let mut weights = vec![1u64; nw];
    let mut centers: Vec<Vec<ProcId>> = vec![Vec::new(); nd];
    for (_, d) in order {
        for (w, slot) in weights.iter_mut().enumerate() {
            *slot = match dag.owner(w as u32, d) {
                Some(t) => weight(pri[t as usize], pri_max),
                None => 1,
            };
        }
        let mask_ref = bounded.then_some(masks.as_slice());
        let (path, _) = solve_weighted(&grid, trace.refs(d), &weights, mask_ref, ws)
            .ok_or_else(|| exhausted(d, None))?;
        if bounded {
            for (w, &p) in path.iter().enumerate() {
                masks[w].allocate(p).map_err(|_| exhausted(d, Some(w)))?;
            }
        }
        centers[d.index()] = path;
    }
    Ok(Schedule::new(grid, centers))
}

/// Shared driver for both precedence-aware strategies: delegate to GOMCDS
/// without a DAG; with one, validate it, compute both the aware and the
/// plain schedule, and return the better under [`estimate_completion`]
/// (ties go to plain GOMCDS, which also minimizes communication volume).
fn guarded_schedule(
    ctx: &mut SchedContext,
    trace: &WindowedTrace,
    mode: PriorityMode,
) -> Result<Schedule, SchedError> {
    let Some(dag) = ctx.dag() else {
        return GomcdsScheduler::fast().schedule(ctx, trace);
    };
    dag.validate_cover(trace)
        .map_err(|e| SchedError::DagMismatch(e.to_string()))?;
    let aware = precedence_schedule(ctx, trace, dag, mode)?;
    let plain = match GomcdsScheduler::fast().schedule(ctx, trace) {
        Ok(s) => s,
        // The weighted replay can survive capacity pressure the plain
        // datum-order replay dies on; keep the feasible schedule.
        Err(SchedError::CapacityExhausted { .. }) => return Ok(aware),
        Err(e) => return Err(e),
    };
    if estimate_completion(trace, &aware, dag) < estimate_completion(trace, &plain, dag) {
        Ok(aware)
    } else {
        Ok(plain)
    }
}

/// Critical-path list scheduling (`list-scds`): upward-rank priorities
/// over the attached DAG steer center selection and capacity order.
/// Without a DAG this *is* GOMCDS (bit-identical, by delegation).
#[derive(Debug, Clone, Copy, Default)]
pub struct ListScdsScheduler;

impl Scheduler for ListScdsScheduler {
    fn name(&self) -> &'static str {
        "list-scds"
    }

    fn description(&self) -> &'static str {
        "critical-path list scheduling over the task DAG (GOMCDS without one)"
    }

    fn in_comparison(&self) -> bool {
        // Cost tables compare communication volume; this trades volume for
        // completion cycles and is evaluated by the BENCH_dag sweep.
        false
    }

    fn precedence_aware(&self) -> bool {
        true
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        guarded_schedule(ctx, trace, PriorityMode::CriticalPath)
    }
}

/// Deadline-ordered scheduling (`edf-scds`): latest-start deadlines from
/// the DAG span; earliest deadline claims placement first. Without a DAG
/// this *is* GOMCDS (bit-identical, by delegation).
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfScdsScheduler;

impl Scheduler for EdfScdsScheduler {
    fn name(&self) -> &'static str {
        "edf-scds"
    }

    fn description(&self) -> &'static str {
        "deadline-ordered (EDF) scheduling over the task DAG (GOMCDS without one)"
    }

    fn in_comparison(&self) -> bool {
        false
    }

    fn precedence_aware(&self) -> bool {
        true
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        guarded_schedule(ctx, trace, PriorityMode::Deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MemoryPolicy, Run};
    use pim_trace::dag::Task;
    use pim_trace::window::WindowRefs;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    fn task(window: u32, data: &[u32], wcet: u64) -> Task {
        Task {
            window,
            data: data.iter().map(|&d| DataId(d)).collect(),
            wcet,
        }
    }

    #[test]
    fn priorities_rank_the_critical_chain() {
        // chain t0 -> t1 -> t2 plus an isolated heavy t3
        let dag = TaskDag::new(
            1,
            vec![
                task(0, &[0], 2),
                task(0, &[1], 2),
                task(0, &[2], 2),
                task(0, &[3], 5),
            ],
            vec![(0, 1), (1, 2)],
        )
        .unwrap();
        let cp = task_priorities(&dag, PriorityMode::CriticalPath);
        assert_eq!(cp, vec![6, 4, 2, 5]);
        // Deadline urgency = remaining chain after the task: the heavy
        // sink t3 is least urgent despite its rank.
        let edf = task_priorities(&dag, PriorityMode::Deadline);
        assert_eq!(edf, vec![4, 2, 0, 0]);
    }

    #[test]
    fn without_dag_both_are_gomcds_bit_identical() {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(3, 1), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 4)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(1, 0), 3)]),
                ],
            ],
        );
        for policy in [MemoryPolicy::Unbounded, MemoryPolicy::Capacity(1)] {
            let gomcds = Run::new(&trace).policy(policy).run_named("GOMCDS").unwrap();
            for name in ["list-scds", "edf-scds"] {
                let s = Run::new(&trace).policy(policy).run_named(name).unwrap();
                assert_eq!(s, gomcds, "{name} under {policy:?}");
            }
        }
    }

    #[test]
    fn weighted_solver_with_unit_weights_matches_gomcds_path() {
        let grid = g();
        let rs = DataRefString::new(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 10)]),
            WindowRefs::new(),
        ]);
        let mut ws = Workspace::new();
        let weighted = solve_weighted(&grid, &rs, &[1, 1, 1], None, &mut ws).unwrap();
        let plain =
            crate::gomcds::gomcds_path(&grid, &rs, crate::gomcds::Solver::DistanceTransform);
        assert_eq!(weighted, plain);
    }

    #[test]
    fn priority_replay_gives_critical_chain_the_contested_slot() {
        let grid = g();
        // Three data all want the same processor under capacity 1. Datum 1
        // heads the chain t1 → t2; datum 0's task is independent. Plain
        // GOMCDS replays in id order, so datum 0 claims the hot slot and
        // the displacement penalty lands on the chain head — compounding
        // into t2's start. Priority replay gives the chain head the slot,
        // so only leaf tasks pay the displacement.
        let hot = grid.proc_xy(1, 1);
        let refs = || vec![WindowRefs::from_pairs([(hot, 3)])];
        let trace = WindowedTrace::from_parts(grid, vec![refs(), refs(), refs()]);
        let dag = TaskDag::new(
            1,
            vec![task(0, &[0], 1), task(0, &[1], 1), task(0, &[2], 1)],
            vec![(1, 2)],
        )
        .unwrap();
        let plain = Run::new(&trace)
            .policy(MemoryPolicy::Capacity(1))
            .run_named("GOMCDS")
            .unwrap();
        assert_eq!(plain.center(DataId(0), 0), hot, "id-order replay");
        let mut run = Run::new(&trace).policy(MemoryPolicy::Capacity(1)).dag(&dag);
        let s = run.run_named("list-scds").unwrap();
        assert_eq!(s.center(DataId(1), 0), hot, "critical chain head wins");
        assert_ne!(s.center(DataId(0), 0), hot);
        assert_ne!(s.center(DataId(2), 0), hot);
        assert!(
            estimate_completion(&trace, &s, &dag) < estimate_completion(&trace, &plain, &dag),
            "priority placement shortens the estimated critical path"
        );
    }

    #[test]
    fn dag_mismatch_is_a_typed_error() {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)])]],
        );
        // DAG owns nothing → the referenced (window 0, datum 0) is unowned.
        let dag = TaskDag::new(1, vec![], vec![]).unwrap();
        let mut run = Run::new(&trace).dag(&dag);
        assert!(matches!(
            run.run_named("list-scds"),
            Err(SchedError::DagMismatch(_))
        ));
    }

    #[test]
    fn estimator_rewards_closer_critical_centers() {
        let grid = g();
        let far = grid.proc_xy(3, 3);
        let near = grid.proc_xy(0, 0);
        let trace =
            WindowedTrace::from_parts(grid, vec![vec![WindowRefs::from_pairs([(near, 2)])]]);
        let dag = TaskDag::new(1, vec![task(0, &[0], 1)], vec![]).unwrap();
        let local = Schedule::new(grid, vec![vec![near]]);
        let remote = Schedule::new(grid, vec![vec![far]]);
        assert_eq!(estimate_completion(&trace, &local, &dag), 0);
        assert_eq!(estimate_completion(&trace, &remote, &dag), 7); // dist 6 + vol 2 − 1
                                                                   // Chained tasks serialize within the window.
        let trace2 = WindowedTrace::from_parts(
            grid,
            vec![
                vec![WindowRefs::from_pairs([(near, 2)])],
                vec![WindowRefs::from_pairs([(near, 2)])],
            ],
        );
        let chain =
            TaskDag::new(1, vec![task(0, &[0], 1), task(0, &[1], 1)], vec![(0, 1)]).unwrap();
        let both_remote = Schedule::new(grid, vec![vec![far], vec![far]]);
        assert_eq!(estimate_completion(&trace2, &both_remote, &chain), 14);
    }
}
