#![warn(missing_docs)]
//! # pim-sched
//!
//! Data-scheduling algorithms for Processor-In-Memory arrays — the primary
//! contribution of *"Optimizing Data Scheduling on Processor-In-Memory
//! Arrays"* (Tian, Sha, Chantrapornchai, Kogge — IPPS 1998).
//!
//! Given an application's *reference strings* (which processors touch which
//! datum in each execution window, see `pim-trace`), the schedulers choose
//! a storage processor (*center*) for every datum in every window so as to
//! minimize total interprocessor communication: the volume-weighted
//! Manhattan distance of every reference plus the cost of moving data
//! between centers of consecutive windows.
//!
//! ## The three schedulers
//!
//! * [`scds`] — **Single-Center Data Scheduling** (paper Algorithm 1): one
//!   center per datum for the whole execution; no run-time movement.
//! * [`lomcds`] — **Local-Optimal Multiple-Center Data Scheduling**: the
//!   per-window optimal center; data moves between windows but each window
//!   is optimized in isolation.
//! * [`gomcds`] — **Global-Optimal Multiple-Center Data Scheduling** (paper
//!   Algorithm 2): a shortest path through a layered *cost graph* couples
//!   reference cost and movement cost, yielding the global optimum per
//!   datum (when memory is unconstrained).
//!
//! Plus:
//!
//! * [`grouping`] — **execution-window grouping** (paper Algorithm 3): a
//!   greedy pass that merges consecutive windows per datum when re-centering
//!   the merged window does not increase total cost; and a DP-optimal
//!   variant used to measure the greedy's gap.
//! * [`baseline`] — the straight-forward static distributions (row-wise,
//!   column-wise, …) the paper compares against.
//! * [`capacity`] — the *processor list* mechanism that resolves memory
//!   capacity conflicts for all schedulers.
//! * [`cache`] — the shared per-trace cost-table cache: per-datum
//!   axis-weight prefix sums serving any window range's cost table in
//!   `O(width + height + m)`; every scheduler's hot path reads from it.
//! * [`workspace`] — the bundled scratch buffers ([`Workspace`]) reused
//!   across data (and across methods) so the hot path stops allocating.
//! * [`theory`] — executable forms of the paper's Lemma 1 / Theorems 1–3.
//! * [`mod@registry`] — the [`Scheduler`] trait and the [`SchedulerRegistry`]:
//!   every strategy (the three schedulers, grouping, the baseline, and the
//!   `online`/`kcopy`/`replicate` extensions) as a pluggable named value.
//! * [`flat`] — big-instance fast paths driving SCDS/LOMCDS/GOMCDS
//!   straight off any flat CSR view (`pim_trace::flat::FlatView`: owned
//!   [`pim_trace::flat::FlatTrace`] or memory-mapped
//!   `pim_trace::binfmt::BinTrace`) with incremental medians and
//!   chunk-sharded parallelism.
//! * [`stream`] — out-of-core scheduling: walk a `.pimb` binary trace in
//!   bounded datum chunks with double-buffered prefetch, folding costs
//!   instead of materializing schedules, bit-identical to [`flat`].
//! * [`context`] — the [`SchedContext`] a scheduler runs against: grid,
//!   policy, shared cost cache, workspace, optional pool.
//! * [`pipeline`] — the [`Run`] builder (one canonical entry point driving
//!   any registered scheduler) plus the paper-table comparison helpers.
//! * [`precedence`] — precedence-aware scheduling over an optional task
//!   DAG (`list-scds` / `edf-scds`): list-scheduling priorities steer
//!   center selection and capacity order.
//!
//! ## Example
//!
//! ```
//! use pim_array::grid::Grid;
//! use pim_trace::builder::TraceBuilder;
//! use pim_trace::ids::DataId;
//! use pim_sched::{MemoryPolicy, Run};
//!
//! let grid = Grid::new(4, 4);
//! let mut b = TraceBuilder::new(grid, 1);
//! b.step().access(grid.proc_xy(0, 0), DataId(0));
//! b.step().access(grid.proc_xy(3, 3), DataId(0));
//! let trace = b.finish().window_fixed(1);
//!
//! let mut run = Run::new(&trace).policy(MemoryPolicy::Unbounded);
//! let sched = run.run_named("gomcds").unwrap();
//! let cost = sched.evaluate(&trace);
//! assert_eq!(cost.total(), 6); // stay put and fetch across, or move once
//! ```

// The DP solvers index dp/cost tables by (window, processor) exactly as
// the recurrences are written in the paper; rewriting those loops with
// iterator adaptors obscures the math for no gain.
#![allow(clippy::needless_range_loop)]

pub mod baseline;
pub mod bounds;
pub mod cache;
pub mod capacity;
pub mod context;
pub mod cost;
pub mod dt;
pub mod error;
pub mod exhaustive;
pub mod explain;
pub mod flat;
pub mod generic;
pub mod gomcds;
pub mod grouping;
pub mod incremental;
pub mod kcopy;
pub mod lomcds;
pub mod median;
pub mod online;
pub mod pipeline;
pub mod precedence;
pub mod refine;
pub mod registry;
pub mod replicate;
pub mod scds;
pub mod schedule;
pub mod stream;
pub mod theory;
pub mod workspace;

pub use cache::{CostCache, DatumCostCache};
pub use context::{PrecedencePolicy, SchedContext};
pub use error::SchedError;
pub use flat::{flat_gomcds, flat_lomcds, flat_scds, flat_total_cost};
pub use incremental::{IncrementalError, IncrementalRun};
pub use pim_metrics::{Metrics, MetricsReport};
pub use pipeline::{
    compare_methods, schedule, schedule_cached, schedule_parallel, schedule_uncached, MemoryPolicy,
    Method, Run,
};
pub use precedence::{
    estimate_completion, task_priorities, EdfScdsScheduler, ListScdsScheduler, PriorityMode,
};
pub use registry::{registry, Scheduler, SchedulerRegistry};
pub use schedule::{CostBreakdown, Schedule};
pub use stream::{
    stream_schedule, stream_schedule_with, stream_total_cost, StreamConfig, StreamError,
    StreamOutcome,
};
pub use workspace::Workspace;
