//! Weighted-median center computation.
//!
//! Under the L1 metric the optimal center's x and y coordinates decouple:
//! each is a weighted median of the axis-projected reference positions.
//! This solver runs in `O(r log r)` for `r` distinct referencing
//! processors, *independent of grid size* — the right tool when the
//! processor array is large and references are sparse (the PetaFlop design
//! point contemplated thousands of PIM nodes).
//!
//! Note the subtlety: the weighted median is an *interval* when total
//! weight splits evenly. [`optimal_center`](crate::cost::optimal_center)
//! breaks ties by lowest processor id; to stay bit-identical this solver
//! picks the lowest median coordinate on each axis, which corresponds to
//! the same rule (property-tested in `tests/`).

use pim_array::grid::{Grid, ProcId};
use pim_trace::window::WindowRefs;

/// Lowest position minimizing `Σ w_i · |pos − x_i|`, i.e. the smallest
/// weighted median of `(position, weight)` pairs. Returns 0 for an empty
/// (or zero-weight) input, matching the cost-table tie-break for empty
/// reference strings.
pub fn weighted_median(pairs: &mut [(u32, u64)]) -> u32 {
    if pairs.is_empty() {
        return 0;
    }
    pairs.sort_unstable_by_key(|&(pos, _)| pos);
    let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return 0;
    }
    // The smallest position where cumulative weight reaches half the total
    // weight is the left end of the median interval. With an even split
    // (2·cum == total exactly) every position between this one and the next
    // weighted point is optimal; the smallest is this one.
    let mut cum = 0u64;
    for &(pos, w) in pairs.iter() {
        cum += w;
        if 2 * cum >= total {
            return pos;
        }
    }
    pairs.last().expect("non-empty").0
}

/// Optimal center via per-axis weighted medians, with the same tie-break as
/// [`crate::cost::optimal_center`] (lowest processor id).
pub fn median_center(grid: &Grid, refs: &WindowRefs) -> ProcId {
    let mut xs: Vec<(u32, u64)> = Vec::with_capacity(refs.num_procs());
    let mut ys: Vec<(u32, u64)> = Vec::with_capacity(refs.num_procs());
    for r in refs.iter() {
        let p = grid.point_of(r.proc);
        xs.push((p.x, r.count as u64));
        ys.push((p.y, r.count as u64));
    }
    let x = weighted_median(&mut xs);
    let y = weighted_median(&mut ys);
    grid.proc_xy(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_at, optimal_center};

    #[test]
    fn median_simple() {
        assert_eq!(weighted_median(&mut [(5, 1)]), 5);
        assert_eq!(weighted_median(&mut [(0, 1), (10, 1)]), 0); // interval [0,10], pick lowest
        assert_eq!(weighted_median(&mut [(0, 1), (10, 3)]), 10);
        assert_eq!(weighted_median(&mut [(0, 3), (10, 1)]), 0);
        assert_eq!(weighted_median(&mut []), 0);
        assert_eq!(weighted_median(&mut [(4, 0)]), 0);
    }

    #[test]
    fn median_unsorted_input() {
        assert_eq!(weighted_median(&mut [(9, 1), (2, 1), (5, 1)]), 5);
    }

    #[test]
    fn median_center_matches_table_solver() {
        let grid = Grid::new(6, 5);
        let cases: Vec<WindowRefs> = vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(5, 4), 1)]),
            WindowRefs::from_pairs([
                (grid.proc_xy(1, 2), 3),
                (grid.proc_xy(4, 0), 2),
                (grid.proc_xy(2, 4), 5),
            ]),
            WindowRefs::new(),
        ];
        for refs in &cases {
            let fast = median_center(&grid, refs);
            let (table, best_cost) = optimal_center(&grid, refs);
            assert_eq!(
                cost_at(&grid, refs, fast),
                best_cost,
                "median center must achieve optimal cost"
            );
            assert_eq!(fast, table, "tie-break must agree");
        }
    }

    #[test]
    fn median_center_empty_refs_origin() {
        let grid = Grid::new(4, 4);
        assert_eq!(median_center(&grid, &WindowRefs::new()), grid.proc_xy(0, 0));
    }
}
