//! Weighted-median center computation.
//!
//! Under the L1 metric the optimal center's x and y coordinates decouple:
//! each is a weighted median of the axis-projected reference positions.
//! This solver runs in `O(r log r)` for `r` distinct referencing
//! processors, *independent of grid size* — the right tool when the
//! processor array is large and references are sparse (the PetaFlop design
//! point contemplated thousands of PIM nodes).
//!
//! Note the subtlety: the weighted median is an *interval* when total
//! weight splits evenly. [`optimal_center`](crate::cost::optimal_center)
//! breaks ties by lowest processor id; to stay bit-identical this solver
//! picks the lowest median coordinate on each axis, which corresponds to
//! the same rule (property-tested in `tests/`).

use pim_array::grid::{Grid, ProcId};
use pim_trace::window::WindowRefs;

/// Lowest position minimizing `Σ w_i · |pos − x_i|`, i.e. the smallest
/// weighted median of `(position, weight)` pairs. Returns 0 for an empty
/// (or zero-weight) input, matching the cost-table tie-break for empty
/// reference strings.
pub fn weighted_median(pairs: &mut [(u32, u64)]) -> u32 {
    if pairs.is_empty() {
        return 0;
    }
    pairs.sort_unstable_by_key(|&(pos, _)| pos);
    let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return 0;
    }
    // The smallest position where cumulative weight reaches half the total
    // weight is the left end of the median interval. With an even split
    // (2·cum == total exactly) every position between this one and the next
    // weighted point is optimal; the smallest is this one.
    let mut cum = 0u64;
    for &(pos, w) in pairs.iter() {
        cum += w;
        if 2 * cum >= total {
            return pos;
        }
    }
    pairs.last().expect("non-empty").0
}

/// [`weighted_median`] over a dense weight array: `weights[p]` is the
/// weight at position `p`. Same tie-break (smallest median position) and
/// empty-input rule; `O(len)` with no sort.
pub fn dense_weighted_median(weights: &[u64]) -> u32 {
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return 0;
    }
    let mut cum = 0u64;
    for (pos, &w) in weights.iter().enumerate() {
        cum += w;
        if 2 * cum >= total {
            return pos as u32;
        }
    }
    weights.len().saturating_sub(1) as u32
}

/// Incrementally maintained weighted median along one axis.
///
/// Holds a weight histogram over positions `0..len` plus a cursor `at`
/// with the weight mass strictly below it, so the current smallest
/// weighted median is readable without re-scanning: after each
/// [`add`](AxisMedianState::add)/[`remove`](AxisMedianState::remove) the
/// cursor walks only as far as the median actually moved. A full window
/// sweep (add a window's references, read, remove them) therefore costs
/// `O(refs + moved positions)` amortized instead of re-sorting per window
/// — the `O(w²·span) → O(w·span)` step of the scale-out path.
///
/// The median definition matches [`weighted_median`] exactly: the smallest
/// position `p` with `2·(weight ≤ p) ≥ total`, and 0 when the total weight
/// is zero (property-tested against the scan solver in
/// `tests/cache_equivalence.rs`).
#[derive(Debug, Clone, Default)]
pub struct AxisMedianState {
    hist: Vec<u64>,
    total: u64,
    /// Weight mass at positions `< at`.
    below: u64,
    at: usize,
}

impl AxisMedianState {
    /// Reset for an axis of `len` positions, clearing all weight.
    pub fn reset(&mut self, len: usize) {
        self.hist.clear();
        self.hist.resize(len, 0);
        self.total = 0;
        self.below = 0;
        self.at = 0;
    }

    /// Add `w` weight at `pos`.
    #[inline]
    pub fn add(&mut self, pos: u32, w: u64) {
        let pos = pos as usize;
        self.hist[pos] += w;
        self.total += w;
        if pos < self.at {
            self.below += w;
        }
    }

    /// Remove `w` weight at `pos` (must have been added before).
    #[inline]
    pub fn remove(&mut self, pos: u32, w: u64) {
        let pos = pos as usize;
        self.hist[pos] -= w;
        self.total -= w;
        if pos < self.at {
            self.below -= w;
        }
    }

    /// Total weight currently held.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The smallest weighted median of the current weights (0 when empty),
    /// walking the cursor from its previous resting point.
    pub fn median(&mut self) -> u32 {
        if self.total == 0 {
            return 0;
        }
        // Down: while `at` itself already satisfies the half-weight rule
        // without hist[at..], the median is at or below `at - 1`.
        while self.at > 0 && 2 * self.below >= self.total {
            self.at -= 1;
            self.below -= self.hist[self.at];
        }
        // Up: advance until cumulative weight through `at` reaches half.
        while 2 * (self.below + self.hist[self.at]) < self.total {
            self.below += self.hist[self.at];
            self.at += 1;
        }
        self.at as u32
    }
}

/// Two-axis incremental median: the L1-optimal center decouples per axis,
/// so one [`AxisMedianState`] per grid axis tracks the current optimal
/// center of whatever reference set has been [`add`](MedianState::add)ed.
/// Tie-breaks match [`crate::cost::optimal_center`] (lowest processor id).
#[derive(Debug, Clone, Default)]
pub struct MedianState {
    /// Column-axis weights.
    pub x: AxisMedianState,
    /// Row-axis weights.
    pub y: AxisMedianState,
}

impl MedianState {
    /// Reset both axes for `grid`, clearing all weight.
    pub fn reset(&mut self, grid: &Grid) {
        self.x.reset(grid.width() as usize);
        self.y.reset(grid.height() as usize);
    }

    /// Add a reference of weight `count` at grid position `(x, y)`.
    #[inline]
    pub fn add(&mut self, x: u32, y: u32, count: u64) {
        self.x.add(x, count);
        self.y.add(y, count);
    }

    /// Remove a previously added reference.
    #[inline]
    pub fn remove(&mut self, x: u32, y: u32, count: u64) {
        self.x.remove(x, count);
        self.y.remove(y, count);
    }

    /// True when no weight is currently held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x.total() == 0
    }

    /// The optimal center of the current reference set (`P0` when empty).
    #[inline]
    pub fn center(&mut self, grid: &Grid) -> ProcId {
        let x = self.x.median();
        let y = self.y.median();
        grid.proc_xy(x, y)
    }
}

/// A pool of per-datum incremental medians in one contiguous allocation.
///
/// Semantically `Vec<MedianState>`, laid out for the incremental engine's
/// churn hot path: each datum owns one fixed-size block of `u64`s —
/// `[x hist | y hist | total, below_x, at_x, below_y, at_y]` — so touching
/// a random datum's median costs one region of consecutive cache lines
/// instead of chasing two separate histogram `Vec`s, and the block address
/// is computable without any dependent load (see
/// [`prefetch`](PackedMedians::prefetch)). Median semantics (cursor walk,
/// tie-breaks, empty ⇒ position 0) match [`AxisMedianState`] exactly.
#[derive(Debug, Clone)]
pub struct PackedMedians {
    w: usize,
    h: usize,
    /// Block stride in `u64`s: `w + h + 5` meta slots.
    block: usize,
    data: Vec<u64>,
}

/// Meta slot offsets past the two histograms.
const PM_TOTAL: usize = 0;
const PM_BELOW_X: usize = 1;
const PM_AT_X: usize = 2;
const PM_BELOW_Y: usize = 3;
const PM_AT_Y: usize = 4;

impl PackedMedians {
    /// An all-empty pool for `num_data` data on `grid`.
    pub fn new(grid: &Grid, num_data: usize) -> PackedMedians {
        let (w, h) = (grid.width() as usize, grid.height() as usize);
        let block = w + h + 5;
        PackedMedians {
            w,
            h,
            block,
            data: vec![0; block.saturating_mul(num_data)],
        }
    }

    /// Bytes one datum's block occupies (budget accounting).
    pub fn block_bytes(grid: &Grid) -> usize {
        (grid.width() as usize + grid.height() as usize + 5) * 8
    }

    /// Add a reference of weight `count` at grid position `(x, y)` to
    /// datum `d`'s median.
    #[inline]
    pub fn add(&mut self, d: usize, x: u32, y: u32, count: u64) {
        let (w, h) = (self.w, self.h);
        let blk = &mut self.data[d * self.block..(d + 1) * self.block];
        blk[x as usize] += count;
        blk[w + y as usize] += count;
        let meta = &mut blk[w + h..];
        meta[PM_TOTAL] += count;
        if (x as u64) < meta[PM_AT_X] {
            meta[PM_BELOW_X] += count;
        }
        if (y as u64) < meta[PM_AT_Y] {
            meta[PM_BELOW_Y] += count;
        }
    }

    /// Remove a previously added reference from datum `d`'s median.
    #[inline]
    pub fn remove(&mut self, d: usize, x: u32, y: u32, count: u64) {
        let (w, h) = (self.w, self.h);
        let blk = &mut self.data[d * self.block..(d + 1) * self.block];
        blk[x as usize] -= count;
        blk[w + y as usize] -= count;
        let meta = &mut blk[w + h..];
        meta[PM_TOTAL] -= count;
        if (x as u64) < meta[PM_AT_X] {
            meta[PM_BELOW_X] -= count;
        }
        if (y as u64) < meta[PM_AT_Y] {
            meta[PM_BELOW_Y] -= count;
        }
    }

    /// The optimal center of datum `d`'s current reference set (`P0` when
    /// empty), walking each axis cursor from its previous resting point.
    #[inline]
    pub fn center(&mut self, d: usize, grid: &Grid) -> ProcId {
        let (w, h) = (self.w, self.h);
        let blk = &mut self.data[d * self.block..(d + 1) * self.block];
        let (hists, meta) = blk.split_at_mut(w + h);
        let total = meta[PM_TOTAL];
        let (cur_x, cur_y) = meta[PM_BELOW_X..].split_at_mut(2);
        let x = packed_axis_median(&hists[..w], total, cur_x);
        let y = packed_axis_median(&hists[w..], total, cur_y);
        grid.proc_xy(x, y)
    }

    /// Hint the CPU to pull datum `d`'s block into cache ahead of use —
    /// the block address needs no dependent load, so a one-op lookahead
    /// overlaps the DRAM latency with the current op's work. No-op on
    /// non-x86_64 targets.
    #[inline]
    pub fn prefetch(&self, d: usize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch reads nothing and faults on nothing; the
        // wrapping pointer math never asserts in-bounds provenance.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = (self.data.as_ptr() as *const i8).wrapping_add(d * self.block * 8);
            _mm_prefetch(p, _MM_HINT_T0);
            _mm_prefetch(p.wrapping_add(64), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = d;
    }
}

/// The [`AxisMedianState`] cursor walk over a packed histogram slice;
/// `cur` is the `[below, at]` cursor pair.
#[inline]
fn packed_axis_median(hist: &[u64], total: u64, cur: &mut [u64]) -> u32 {
    if total == 0 {
        return 0;
    }
    let mut b = cur[0];
    let mut a = cur[1] as usize;
    while a > 0 && 2 * b >= total {
        a -= 1;
        b -= hist[a];
    }
    while 2 * (b + hist[a]) < total {
        b += hist[a];
        a += 1;
    }
    cur[0] = b;
    cur[1] = a as u64;
    a as u32
}

/// Optimal center via per-axis weighted medians, with the same tie-break as
/// [`crate::cost::optimal_center`] (lowest processor id).
pub fn median_center(grid: &Grid, refs: &WindowRefs) -> ProcId {
    let mut xs: Vec<(u32, u64)> = Vec::with_capacity(refs.num_procs());
    let mut ys: Vec<(u32, u64)> = Vec::with_capacity(refs.num_procs());
    for r in refs.iter() {
        let p = grid.point_of(r.proc);
        xs.push((p.x, r.count as u64));
        ys.push((p.y, r.count as u64));
    }
    let x = weighted_median(&mut xs);
    let y = weighted_median(&mut ys);
    grid.proc_xy(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_at, optimal_center};

    #[test]
    fn median_simple() {
        assert_eq!(weighted_median(&mut [(5, 1)]), 5);
        assert_eq!(weighted_median(&mut [(0, 1), (10, 1)]), 0); // interval [0,10], pick lowest
        assert_eq!(weighted_median(&mut [(0, 1), (10, 3)]), 10);
        assert_eq!(weighted_median(&mut [(0, 3), (10, 1)]), 0);
        assert_eq!(weighted_median(&mut []), 0);
        assert_eq!(weighted_median(&mut [(4, 0)]), 0);
    }

    #[test]
    fn median_unsorted_input() {
        assert_eq!(weighted_median(&mut [(9, 1), (2, 1), (5, 1)]), 5);
    }

    #[test]
    fn median_center_matches_table_solver() {
        let grid = Grid::new(6, 5);
        let cases: Vec<WindowRefs> = vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(5, 4), 1)]),
            WindowRefs::from_pairs([
                (grid.proc_xy(1, 2), 3),
                (grid.proc_xy(4, 0), 2),
                (grid.proc_xy(2, 4), 5),
            ]),
            WindowRefs::new(),
        ];
        for refs in &cases {
            let fast = median_center(&grid, refs);
            let (table, best_cost) = optimal_center(&grid, refs);
            assert_eq!(
                cost_at(&grid, refs, fast),
                best_cost,
                "median center must achieve optimal cost"
            );
            assert_eq!(fast, table, "tie-break must agree");
        }
    }

    #[test]
    fn median_center_empty_refs_origin() {
        let grid = Grid::new(4, 4);
        assert_eq!(median_center(&grid, &WindowRefs::new()), grid.proc_xy(0, 0));
    }

    #[test]
    fn incremental_axis_median_matches_scan() {
        // Drive the state through an add/remove sequence and check every
        // intermediate median against the scan solver over the live set.
        let ops: Vec<(bool, u32, u64)> = vec![
            (true, 5, 1),
            (true, 0, 1),
            (true, 9, 3),
            (false, 5, 1),
            (true, 2, 2),
            (true, 2, 4),
            (false, 9, 3),
            (false, 0, 1),
            (false, 2, 2),
            (false, 2, 4),
        ];
        let mut st = AxisMedianState::default();
        st.reset(12);
        let mut live: Vec<(u32, u64)> = Vec::new();
        for (add, pos, w) in ops {
            if add {
                st.add(pos, w);
                live.push((pos, w));
            } else {
                st.remove(pos, w);
                let i = live.iter().position(|&e| e == (pos, w)).unwrap();
                live.remove(i);
            }
            let mut pairs = live.clone();
            assert_eq!(
                st.median(),
                weighted_median(&mut pairs),
                "after ops ending ({add}, {pos}, {w})"
            );
        }
        assert_eq!(st.total(), 0);
    }

    #[test]
    fn median_state_sliding_window_sweep() {
        // The flat-path usage shape: per window, add the window's refs,
        // read the center, remove them — must equal the per-window scan.
        let grid = Grid::new(6, 5);
        let windows: Vec<WindowRefs> = vec![
            WindowRefs::from_pairs([(grid.proc_xy(1, 2), 3), (grid.proc_xy(4, 0), 2)]),
            WindowRefs::new(),
            WindowRefs::from_pairs([(grid.proc_xy(2, 4), 5)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(5, 4), 1)]),
        ];
        let mut st = MedianState::default();
        st.reset(&grid);
        for refs in &windows {
            for r in refs.iter() {
                let p = grid.point_of(r.proc);
                st.add(p.x, p.y, r.count as u64);
            }
            if refs.is_empty() {
                assert!(st.is_empty());
            } else {
                assert_eq!(st.center(&grid), median_center(&grid, refs));
            }
            for r in refs.iter() {
                let p = grid.point_of(r.proc);
                st.remove(p.x, p.y, r.count as u64);
            }
        }
    }

    #[test]
    fn median_state_extending_range_matches_merged() {
        // SCDS shape: keep adding windows and read the running center of
        // the merged prefix.
        let grid = Grid::new(6, 5);
        let windows: Vec<WindowRefs> = vec![
            WindowRefs::from_pairs([(grid.proc_xy(5, 4), 2)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 1), 2)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
        ];
        let mut st = MedianState::default();
        st.reset(&grid);
        let mut merged = WindowRefs::new();
        for refs in &windows {
            for r in refs.iter() {
                let p = grid.point_of(r.proc);
                st.add(p.x, p.y, r.count as u64);
            }
            merged.merge(refs);
            assert_eq!(st.center(&grid), median_center(&grid, &merged));
        }
    }

    #[test]
    fn packed_medians_match_median_state() {
        let grid = Grid::new(5, 3);
        let nd = 4;
        let mut pm = PackedMedians::new(&grid, nd);
        let mut refs: Vec<MedianState> = (0..nd)
            .map(|_| {
                let mut m = MedianState::default();
                m.reset(&grid);
                m
            })
            .collect();
        // Empty blocks agree with the empty-state tie-break.
        assert_eq!(pm.center(0, &grid), refs[0].center(&grid));

        let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut step = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut live: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); nd];
        for _ in 0..500 {
            let d = (step() % nd as u64) as usize;
            if !live[d].is_empty() && step() % 3 == 0 {
                let i = (step() as usize) % live[d].len();
                let (x, y, c) = live[d].swap_remove(i);
                pm.remove(d, x, y, c);
                refs[d].remove(x, y, c);
            } else {
                let x = (step() % 5) as u32;
                let y = (step() % 3) as u32;
                let c = 1 + step() % 9;
                live[d].push((x, y, c));
                pm.add(d, x, y, c);
                refs[d].add(x, y, c);
            }
            pm.prefetch(d);
            assert_eq!(pm.center(d, &grid), refs[d].center(&grid));
        }
        for d in 0..nd {
            assert_eq!(pm.center(d, &grid), refs[d].center(&grid));
        }
    }
}
