//! Weighted-median center computation.
//!
//! Under the L1 metric the optimal center's x and y coordinates decouple:
//! each is a weighted median of the axis-projected reference positions.
//! This solver runs in `O(r log r)` for `r` distinct referencing
//! processors, *independent of grid size* — the right tool when the
//! processor array is large and references are sparse (the PetaFlop design
//! point contemplated thousands of PIM nodes).
//!
//! Note the subtlety: the weighted median is an *interval* when total
//! weight splits evenly. [`optimal_center`](crate::cost::optimal_center)
//! breaks ties by lowest processor id; to stay bit-identical this solver
//! picks the lowest median coordinate on each axis, which corresponds to
//! the same rule (property-tested in `tests/`).

use pim_array::grid::{Grid, ProcId};
use pim_trace::window::WindowRefs;

/// Lowest position minimizing `Σ w_i · |pos − x_i|`, i.e. the smallest
/// weighted median of `(position, weight)` pairs. Returns 0 for an empty
/// (or zero-weight) input, matching the cost-table tie-break for empty
/// reference strings.
pub fn weighted_median(pairs: &mut [(u32, u64)]) -> u32 {
    if pairs.is_empty() {
        return 0;
    }
    pairs.sort_unstable_by_key(|&(pos, _)| pos);
    let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return 0;
    }
    // The smallest position where cumulative weight reaches half the total
    // weight is the left end of the median interval. With an even split
    // (2·cum == total exactly) every position between this one and the next
    // weighted point is optimal; the smallest is this one.
    let mut cum = 0u64;
    for &(pos, w) in pairs.iter() {
        cum += w;
        if 2 * cum >= total {
            return pos;
        }
    }
    pairs.last().expect("non-empty").0
}

/// [`weighted_median`] over a dense weight array: `weights[p]` is the
/// weight at position `p`. Same tie-break (smallest median position) and
/// empty-input rule; `O(len)` with no sort.
pub fn dense_weighted_median(weights: &[u64]) -> u32 {
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return 0;
    }
    let mut cum = 0u64;
    for (pos, &w) in weights.iter().enumerate() {
        cum += w;
        if 2 * cum >= total {
            return pos as u32;
        }
    }
    weights.len().saturating_sub(1) as u32
}

/// Incrementally maintained weighted median along one axis.
///
/// Holds a weight histogram over positions `0..len` plus a cursor `at`
/// with the weight mass strictly below it, so the current smallest
/// weighted median is readable without re-scanning: after each
/// [`add`](AxisMedianState::add)/[`remove`](AxisMedianState::remove) the
/// cursor walks only as far as the median actually moved. A full window
/// sweep (add a window's references, read, remove them) therefore costs
/// `O(refs + moved positions)` amortized instead of re-sorting per window
/// — the `O(w²·span) → O(w·span)` step of the scale-out path.
///
/// The median definition matches [`weighted_median`] exactly: the smallest
/// position `p` with `2·(weight ≤ p) ≥ total`, and 0 when the total weight
/// is zero (property-tested against the scan solver in
/// `tests/cache_equivalence.rs`).
#[derive(Debug, Clone, Default)]
pub struct AxisMedianState {
    hist: Vec<u64>,
    total: u64,
    /// Weight mass at positions `< at`.
    below: u64,
    at: usize,
}

impl AxisMedianState {
    /// Reset for an axis of `len` positions, clearing all weight.
    pub fn reset(&mut self, len: usize) {
        self.hist.clear();
        self.hist.resize(len, 0);
        self.total = 0;
        self.below = 0;
        self.at = 0;
    }

    /// Add `w` weight at `pos`.
    #[inline]
    pub fn add(&mut self, pos: u32, w: u64) {
        let pos = pos as usize;
        self.hist[pos] += w;
        self.total += w;
        if pos < self.at {
            self.below += w;
        }
    }

    /// Remove `w` weight at `pos` (must have been added before).
    #[inline]
    pub fn remove(&mut self, pos: u32, w: u64) {
        let pos = pos as usize;
        self.hist[pos] -= w;
        self.total -= w;
        if pos < self.at {
            self.below -= w;
        }
    }

    /// Total weight currently held.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The smallest weighted median of the current weights (0 when empty),
    /// walking the cursor from its previous resting point.
    pub fn median(&mut self) -> u32 {
        if self.total == 0 {
            return 0;
        }
        // Down: while `at` itself already satisfies the half-weight rule
        // without hist[at..], the median is at or below `at - 1`.
        while self.at > 0 && 2 * self.below >= self.total {
            self.at -= 1;
            self.below -= self.hist[self.at];
        }
        // Up: advance until cumulative weight through `at` reaches half.
        while 2 * (self.below + self.hist[self.at]) < self.total {
            self.below += self.hist[self.at];
            self.at += 1;
        }
        self.at as u32
    }
}

/// Two-axis incremental median: the L1-optimal center decouples per axis,
/// so one [`AxisMedianState`] per grid axis tracks the current optimal
/// center of whatever reference set has been [`add`](MedianState::add)ed.
/// Tie-breaks match [`crate::cost::optimal_center`] (lowest processor id).
#[derive(Debug, Clone, Default)]
pub struct MedianState {
    /// Column-axis weights.
    pub x: AxisMedianState,
    /// Row-axis weights.
    pub y: AxisMedianState,
}

impl MedianState {
    /// Reset both axes for `grid`, clearing all weight.
    pub fn reset(&mut self, grid: &Grid) {
        self.x.reset(grid.width() as usize);
        self.y.reset(grid.height() as usize);
    }

    /// Add a reference of weight `count` at grid position `(x, y)`.
    #[inline]
    pub fn add(&mut self, x: u32, y: u32, count: u64) {
        self.x.add(x, count);
        self.y.add(y, count);
    }

    /// Remove a previously added reference.
    #[inline]
    pub fn remove(&mut self, x: u32, y: u32, count: u64) {
        self.x.remove(x, count);
        self.y.remove(y, count);
    }

    /// True when no weight is currently held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x.total() == 0
    }

    /// The optimal center of the current reference set (`P0` when empty).
    #[inline]
    pub fn center(&mut self, grid: &Grid) -> ProcId {
        let x = self.x.median();
        let y = self.y.median();
        grid.proc_xy(x, y)
    }
}

/// Optimal center via per-axis weighted medians, with the same tie-break as
/// [`crate::cost::optimal_center`] (lowest processor id).
pub fn median_center(grid: &Grid, refs: &WindowRefs) -> ProcId {
    let mut xs: Vec<(u32, u64)> = Vec::with_capacity(refs.num_procs());
    let mut ys: Vec<(u32, u64)> = Vec::with_capacity(refs.num_procs());
    for r in refs.iter() {
        let p = grid.point_of(r.proc);
        xs.push((p.x, r.count as u64));
        ys.push((p.y, r.count as u64));
    }
    let x = weighted_median(&mut xs);
    let y = weighted_median(&mut ys);
    grid.proc_xy(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_at, optimal_center};

    #[test]
    fn median_simple() {
        assert_eq!(weighted_median(&mut [(5, 1)]), 5);
        assert_eq!(weighted_median(&mut [(0, 1), (10, 1)]), 0); // interval [0,10], pick lowest
        assert_eq!(weighted_median(&mut [(0, 1), (10, 3)]), 10);
        assert_eq!(weighted_median(&mut [(0, 3), (10, 1)]), 0);
        assert_eq!(weighted_median(&mut []), 0);
        assert_eq!(weighted_median(&mut [(4, 0)]), 0);
    }

    #[test]
    fn median_unsorted_input() {
        assert_eq!(weighted_median(&mut [(9, 1), (2, 1), (5, 1)]), 5);
    }

    #[test]
    fn median_center_matches_table_solver() {
        let grid = Grid::new(6, 5);
        let cases: Vec<WindowRefs> = vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(5, 4), 1)]),
            WindowRefs::from_pairs([
                (grid.proc_xy(1, 2), 3),
                (grid.proc_xy(4, 0), 2),
                (grid.proc_xy(2, 4), 5),
            ]),
            WindowRefs::new(),
        ];
        for refs in &cases {
            let fast = median_center(&grid, refs);
            let (table, best_cost) = optimal_center(&grid, refs);
            assert_eq!(
                cost_at(&grid, refs, fast),
                best_cost,
                "median center must achieve optimal cost"
            );
            assert_eq!(fast, table, "tie-break must agree");
        }
    }

    #[test]
    fn median_center_empty_refs_origin() {
        let grid = Grid::new(4, 4);
        assert_eq!(median_center(&grid, &WindowRefs::new()), grid.proc_xy(0, 0));
    }

    #[test]
    fn incremental_axis_median_matches_scan() {
        // Drive the state through an add/remove sequence and check every
        // intermediate median against the scan solver over the live set.
        let ops: Vec<(bool, u32, u64)> = vec![
            (true, 5, 1),
            (true, 0, 1),
            (true, 9, 3),
            (false, 5, 1),
            (true, 2, 2),
            (true, 2, 4),
            (false, 9, 3),
            (false, 0, 1),
            (false, 2, 2),
            (false, 2, 4),
        ];
        let mut st = AxisMedianState::default();
        st.reset(12);
        let mut live: Vec<(u32, u64)> = Vec::new();
        for (add, pos, w) in ops {
            if add {
                st.add(pos, w);
                live.push((pos, w));
            } else {
                st.remove(pos, w);
                let i = live.iter().position(|&e| e == (pos, w)).unwrap();
                live.remove(i);
            }
            let mut pairs = live.clone();
            assert_eq!(
                st.median(),
                weighted_median(&mut pairs),
                "after ops ending ({add}, {pos}, {w})"
            );
        }
        assert_eq!(st.total(), 0);
    }

    #[test]
    fn median_state_sliding_window_sweep() {
        // The flat-path usage shape: per window, add the window's refs,
        // read the center, remove them — must equal the per-window scan.
        let grid = Grid::new(6, 5);
        let windows: Vec<WindowRefs> = vec![
            WindowRefs::from_pairs([(grid.proc_xy(1, 2), 3), (grid.proc_xy(4, 0), 2)]),
            WindowRefs::new(),
            WindowRefs::from_pairs([(grid.proc_xy(2, 4), 5)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(5, 4), 1)]),
        ];
        let mut st = MedianState::default();
        st.reset(&grid);
        for refs in &windows {
            for r in refs.iter() {
                let p = grid.point_of(r.proc);
                st.add(p.x, p.y, r.count as u64);
            }
            if refs.is_empty() {
                assert!(st.is_empty());
            } else {
                assert_eq!(st.center(&grid), median_center(&grid, refs));
            }
            for r in refs.iter() {
                let p = grid.point_of(r.proc);
                st.remove(p.x, p.y, r.count as u64);
            }
        }
    }

    #[test]
    fn median_state_extending_range_matches_merged() {
        // SCDS shape: keep adding windows and read the running center of
        // the merged prefix.
        let grid = Grid::new(6, 5);
        let windows: Vec<WindowRefs> = vec![
            WindowRefs::from_pairs([(grid.proc_xy(5, 4), 2)]),
            WindowRefs::from_pairs([(grid.proc_xy(0, 1), 2)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
        ];
        let mut st = MedianState::default();
        st.reset(&grid);
        let mut merged = WindowRefs::new();
        for refs in &windows {
            for r in refs.iter() {
                let p = grid.point_of(r.proc);
                st.add(p.x, p.y, r.count as u64);
            }
            merged.merge(refs);
            assert_eq!(st.center(&grid), median_center(&grid, &merged));
        }
    }
}
