//! Scheduling straight off a flat CSR trace — the big-instance fast path.
//!
//! The registry schedulers consume a [`pim_trace::window::WindowedTrace`];
//! at millions of data the nested representation's allocation count and
//! pointer chasing dominate the runtime before any scheduling math runs.
//! The entry points here drive SCDS, LOMCDS and GOMCDS directly from the
//! flat CSR layout. They are generic over [`FlatView`], so the same code
//! runs against an owned in-memory [`pim_trace::flat::FlatTrace`] or a zero-copy
//! memory-mapped [`pim_trace::binfmt::BinTrace`] — scheduling straight off
//! file bytes:
//!
//! * center selection uses the incremental weighted medians of
//!   [`crate::median::MedianState`] wherever the classic path's full cost
//!   table is only read at its argmin (SCDS always; every unconstrained
//!   LOMCDS window) — `O(span + width + height)` per datum instead of
//!   `O(windows · (width + height))` table sweeps;
//! * per-datum work is sharded over the [`pim_par`] pool in contiguous
//!   chunks sized by [`pim_par::auto_chunk`], so workers stream adjacent
//!   spans of the shared `refs` array;
//! * bounded-capacity runs keep the exact two-phase scheme of the classic
//!   schedulers (parallel pure phase, sequential capacity replay in datum
//!   order), reusing the same replay code where it exists.
//!
//! Every entry point is **bit-identical** to the classic scheduler on the
//! equivalent nested trace (property-tested in
//! `tests/cache_equivalence.rs`): the weighted median with
//! smallest-coordinate tie-break equals the cost table's lowest-id argmin
//! (see [`crate::median`]), and capacity resolution replays the same
//! decisions in the same order.

use crate::cache::CostCache;
use crate::capacity::ProcessorList;
use crate::cost::AxisScratch;
use crate::error::{ensure_feasible, exhausted, SchedError};
use crate::gomcds::{gomcds_path_cached, solve_masked_path_cached, Solver};
use crate::median::MedianState;
use crate::pipeline::MemoryPolicy;
use crate::schedule::{CostBreakdown, Schedule};
use crate::workspace::Workspace;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::MemoryMap;
use pim_par::Pool;
use pim_trace::flat::{span_window_runs, FlatRef, FlatView};
use pim_trace::ids::DataId;

/// Per-worker scratch for the median-driven phases. Shared with the
/// out-of-core pipeline in [`crate::stream`].
#[derive(Default)]
pub(crate) struct FlatScratch {
    pub(crate) med: MedianState,
    axes: AxisScratch,
    table: Vec<u64>,
}

/// The datum ids `0..nd` (the shard items for every phase-1 fan-out).
fn datum_ids(nd: usize) -> Vec<DataId> {
    (0..nd as u32).map(DataId).collect()
}

/// Full-span cost table of one datum (merged over all windows), built from
/// the flat refs — the spill path when a median center has no room. Shared
/// with the incremental engine's SCDS fallback replay.
pub(crate) fn span_full_table(
    grid: &Grid,
    span: &[FlatRef],
    axes: &mut AxisScratch,
    out: &mut Vec<u64>,
) {
    axes.reset_weights(grid);
    for r in span {
        axes.wx[r.x as usize] += r.count as u64;
        axes.wy[r.y as usize] += r.count as u64;
    }
    axes.sweep_into(grid, out);
}

/// The merged-window weighted median of one span — SCDS's pure per-datum
/// phase. Shared with the out-of-core pipeline in [`crate::stream`].
pub(crate) fn span_merged_median(grid: &Grid, span: &[FlatRef], med: &mut MedianState) -> ProcId {
    med.reset(grid);
    for r in span {
        med.add(r.x, r.y, r.count as u64);
    }
    med.center(grid)
}

/// SCDS's sequential capacity replay: medians are offered in ascending
/// datum order, and a datum whose median is full falls back to its full
/// (cost, id)-ordered processor list — exactly the classic scheduler's
/// decisions. Factored into a state object so [`crate::stream`] can feed
/// it chunk by chunk and stay bit-identical to [`flat_scds`].
pub(crate) struct ScdsReplay {
    mem: MemoryMap,
    scratch: FlatScratch,
}

impl ScdsReplay {
    pub(crate) fn new(grid: &Grid, spec: pim_array::memory::MemorySpec) -> ScdsReplay {
        ScdsReplay {
            mem: MemoryMap::new(grid, spec),
            scratch: FlatScratch::default(),
        }
    }

    /// Place datum `d` (with precomputed merged median `c`), mutating the
    /// shared capacity state. Must be called in ascending datum order.
    pub(crate) fn place(
        &mut self,
        grid: &Grid,
        d: DataId,
        span: &[FlatRef],
        c: ProcId,
    ) -> Result<ProcId, SchedError> {
        if self.mem.has_room(c) {
            self.mem.allocate(c).map_err(|_| exhausted(d, None))?;
            return Ok(c);
        }
        // The median (= list head) is full: fall back to the full
        // (cost, id)-ordered list, exactly as the classic path does.
        span_full_table(grid, span, &mut self.scratch.axes, &mut self.scratch.table);
        ProcessorList::from_cost_table(&self.scratch.table)
            .assign(&mut self.mem)
            .ok_or_else(|| exhausted(d, None))
    }
}

/// SCDS on a flat trace: one merged-window median per datum, capacity
/// resolved in ascending datum order. Bit-identical to
/// [`crate::scds::scds_schedule_cached`] on the equivalent nested trace —
/// the merged median *is* the head of the merged processor list, and a
/// datum only needs the rest of that list when its median is full.
pub fn flat_scds<V: FlatView + ?Sized>(
    flat: &V,
    policy: MemoryPolicy,
    pool: Pool,
) -> Result<Schedule, SchedError> {
    let grid = flat.grid();
    let nd = flat.num_data();
    let spec = policy.resolve_parts(&grid, nd);
    ensure_feasible(&grid, spec, nd)?;

    let ids = datum_ids(nd);
    let medians = pim_par::parallel_map_with_chunked(
        pool,
        &ids,
        pim_par::auto_chunk(nd, pool.threads()),
        FlatScratch::default,
        |s, _, &d| span_merged_median(&grid, flat.span(d), &mut s.med),
    );

    let mut replay = ScdsReplay::new(&grid, spec);
    let mut placement = Vec::with_capacity(nd);
    for (d, &c) in ids.iter().zip(&medians) {
        placement.push(replay.place(&grid, *d, flat.span(*d), c)?);
    }
    Ok(Schedule::static_placement(
        grid,
        placement,
        flat.num_windows(),
    ))
}

/// The unconstrained LOMCDS center sequence of one datum from its flat
/// span: per-window incremental medians with carry-forward / backfill gap
/// resolution — `lomcds_centers_unconstrained` without a cost table.
/// Shared with the out-of-core pipeline in [`crate::stream`].
pub(crate) fn span_lomcds_centers(
    grid: &Grid,
    span: &[FlatRef],
    nw: usize,
    med: &mut MedianState,
) -> Vec<ProcId> {
    let mut centers: Vec<Option<ProcId>> = vec![None; nw];
    med.reset(grid);
    for (w, run) in span_window_runs(span) {
        for r in run {
            med.add(r.x, r.y, r.count as u64);
        }
        centers[w as usize] = Some(med.center(grid));
        for r in run {
            med.remove(r.x, r.y, r.count as u64);
        }
    }
    crate::lomcds::resolve_gaps_pub(&mut centers);
    centers
        .into_iter()
        .map(|c| c.unwrap_or(ProcId(0)))
        .collect()
}

/// LOMCDS on a flat trace. Unbounded runs are pure per-datum median
/// sweeps (fully parallel, no capacity state); bounded runs compute the
/// per-datum anchors in parallel and replay the classic window-major
/// capacity loop over a flat-backed cost cache. Bit-identical to
/// [`crate::lomcds::lomcds_schedule_cached`] on the equivalent nested
/// trace: with unbounded memory the classic loop's `nearest_free(anchor)`
/// returns the anchor and its processor-list head is the window median, so
/// the whole loop degenerates to exactly the gap-resolved median sequence.
pub fn flat_lomcds<V: FlatView + ?Sized>(
    flat: &V,
    policy: MemoryPolicy,
    pool: Pool,
) -> Result<Schedule, SchedError> {
    let grid = flat.grid();
    let nd = flat.num_data();
    let nw = flat.num_windows();
    let spec = policy.resolve_parts(&grid, nd);
    ensure_feasible(&grid, spec, nd)?;
    let ids = datum_ids(nd);
    let chunk = pim_par::auto_chunk(nd, pool.threads());

    if spec.capacity_per_proc == u32::MAX {
        let centers = pim_par::parallel_map_with_chunked(
            pool,
            &ids,
            chunk,
            FlatScratch::default,
            |s, _, &d| span_lomcds_centers(&grid, flat.span(d), nw, &mut s.med),
        );
        return Ok(Schedule::new(grid, centers));
    }

    // Bounded: anchors in parallel (datum `d`'s window-0 anchor is the
    // median of its first referenced window), then the classic sequential
    // window-major replay over a flat-backed cache.
    let anchors =
        pim_par::parallel_map_with_chunked(pool, &ids, chunk, FlatScratch::default, |s, _, &d| {
            match span_window_runs(flat.span(d)).next() {
                Some((_, run)) => {
                    s.med.reset(&grid);
                    for r in run {
                        s.med.add(r.x, r.y, r.count as u64);
                    }
                    s.med.center(&grid)
                }
                None => ProcId(0),
            }
        });
    let cache = CostCache::build_flat(flat);
    let mut ws = Workspace::new();
    crate::lomcds::lomcds_assign(grid, nw, spec, &cache, &mut ws, &anchors)
}

/// GOMCDS (distance-transform solver) on a flat trace: per-datum layered
/// shortest paths served from a flat-backed cost cache, with the classic
/// two-phase capacity replay for bounded runs. Bit-identical to
/// [`crate::gomcds::gomcds_schedule_cached`] on the equivalent nested
/// trace — the cache serves identical tables from either backing.
pub fn flat_gomcds<V: FlatView + ?Sized>(
    flat: &V,
    policy: MemoryPolicy,
    pool: Pool,
) -> Result<Schedule, SchedError> {
    let grid = flat.grid();
    let nd = flat.num_data();
    let nw = flat.num_windows();
    let spec = policy.resolve_parts(&grid, nd);
    ensure_feasible(&grid, spec, nd)?;
    let cache = CostCache::build_flat(flat);
    let ids = datum_ids(nd);

    let paths = pim_par::parallel_map_with_chunked(
        pool,
        &ids,
        pim_par::auto_chunk(nd, pool.threads()),
        Workspace::new,
        |ws, _, &d| gomcds_path_cached(&grid, cache.datum(d), Solver::DistanceTransform, ws).0,
    );
    if spec.capacity_per_proc == u32::MAX {
        return Ok(Schedule::new(grid, paths));
    }

    // Sequential replay in datum order: a path that is still free in every
    // window is what the masked DP would return (masking raises no cost
    // along it); anything else re-solves against the current masks.
    let mut ws = Workspace::new();
    let mut masks: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();
    let mut centers = Vec::with_capacity(nd);
    for (d, unconstrained) in ids.into_iter().zip(paths) {
        let free = unconstrained
            .iter()
            .enumerate()
            .all(|(w, &p)| masks[w].has_room(p));
        let path = if free {
            unconstrained
        } else {
            solve_masked_path_cached(&grid, cache.datum(d), &masks, &mut ws)
                .ok_or_else(|| exhausted(d, None))?
        };
        for (w, &p) in path.iter().enumerate() {
            masks[w].allocate(p).map_err(|_| exhausted(d, Some(w)))?;
        }
        centers.push(path);
    }
    Ok(Schedule::new(grid, centers))
}

/// Evaluate a schedule against a flat trace: volume-weighted reference
/// distances plus inter-window movement, exactly as
/// [`Schedule::evaluate`] charges them on the nested representation.
///
/// # Panics
/// Panics when the schedule shape (grid, data count, window count) does
/// not match the trace.
pub fn flat_total_cost<V: FlatView + ?Sized>(flat: &V, schedule: &Schedule) -> CostBreakdown {
    let grid = flat.grid();
    assert_eq!(grid, schedule.grid(), "schedule/trace grid mismatch");
    assert_eq!(flat.num_data(), schedule.num_data(), "data count mismatch");
    assert_eq!(
        flat.num_windows(),
        schedule.num_windows(),
        "window count mismatch"
    );
    let mut cost = CostBreakdown::default();
    for d in 0..flat.num_data() {
        let d = DataId(d as u32);
        let centers = schedule.centers_of(d);
        for r in flat.span(d) {
            let c = grid.point_of(centers[r.window as usize]);
            let dist =
                (r.x as i64 - c.x as i64).unsigned_abs() + (r.y as i64 - c.y as i64).unsigned_abs();
            cost.reference += r.count as u64 * dist;
        }
        for pair in centers.windows(2) {
            cost.movement += grid.dist(pair[0], pair[1]);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::Grid;
    use pim_trace::flat::FlatTrace;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn sample_trace() -> WindowedTrace {
        let grid = Grid::new(4, 4);
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(1, 0), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 4)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 2), 2)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1)]),
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 3)]),
                ],
                vec![WindowRefs::new(), WindowRefs::new(), WindowRefs::new()],
            ],
        )
    }

    #[test]
    fn flat_paths_match_classic_schedulers() {
        let trace = sample_trace();
        let flat = FlatTrace::from_trace(&trace);
        let pool = Pool::with_threads(2);
        for policy in [
            MemoryPolicy::Unbounded,
            MemoryPolicy::ScaledMinimum { factor: 2 },
            MemoryPolicy::Capacity(1),
        ] {
            let classic = |m| crate::pipeline::schedule(m, &trace, policy);
            assert_eq!(
                flat_scds(&flat, policy, pool).unwrap(),
                classic(crate::pipeline::Method::Scds),
                "SCDS {policy:?}"
            );
            assert_eq!(
                flat_lomcds(&flat, policy, pool).unwrap(),
                classic(crate::pipeline::Method::Lomcds),
                "LOMCDS {policy:?}"
            );
            assert_eq!(
                flat_gomcds(&flat, policy, pool).unwrap(),
                classic(crate::pipeline::Method::Gomcds),
                "GOMCDS {policy:?}"
            );
        }
    }

    #[test]
    fn flat_cost_matches_schedule_evaluate() {
        let trace = sample_trace();
        let flat = FlatTrace::from_trace(&trace);
        for m in [
            crate::pipeline::Method::Scds,
            crate::pipeline::Method::Lomcds,
            crate::pipeline::Method::Gomcds,
        ] {
            let s = crate::pipeline::schedule(m, &trace, MemoryPolicy::Unbounded);
            assert_eq!(flat_total_cost(&flat, &s), s.evaluate(&trace), "{m}");
        }
    }

    #[test]
    fn flat_infeasible_errors() {
        let grid = Grid::new(2, 1);
        let trace = WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]; 3]);
        let flat = FlatTrace::from_trace(&trace);
        let pool = Pool::serial();
        type FlatFn = fn(&FlatTrace, MemoryPolicy, Pool) -> Result<Schedule, SchedError>;
        let fns: [FlatFn; 3] = [flat_scds, flat_lomcds, flat_gomcds];
        for f in fns {
            let err = f(&flat, MemoryPolicy::Capacity(1), pool).unwrap_err();
            assert!(matches!(err, SchedError::CapacityExhausted { .. }));
        }
    }
}
