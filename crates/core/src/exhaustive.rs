//! Brute-force optimal scheduling for tiny instances.
//!
//! Enumerates *every* center sequence for each datum and keeps the
//! cheapest. Exponential (`m^n` per datum), usable only for tests — which
//! is exactly its job: certifying that GOMCDS's layered shortest path
//! really is the per-datum optimum, independent of the DP's correctness
//! arguments.

use crate::cost::cost_at;
use crate::schedule::Schedule;
use pim_array::grid::{Grid, ProcId};
use pim_trace::window::{DataRefString, WindowedTrace};

/// The minimum achievable cost and one sequence achieving it (the
/// lexicographically smallest among minimizers, for determinism).
pub fn optimal_path_exhaustive(grid: &Grid, rs: &DataRefString) -> (Vec<ProcId>, u64) {
    let m = grid.num_procs();
    let nw = rs.num_windows();
    assert!(
        (m as f64).powi(nw as i32) <= 5e7,
        "exhaustive search infeasible: {m}^{nw} sequences"
    );
    // Precompute per-window cost tables.
    let tables: Vec<Vec<u64>> = (0..nw)
        .map(|w| {
            let mut t = Vec::new();
            crate::cost::cost_table(grid, rs.window(w), &mut t);
            t
        })
        .collect();

    let mut best_cost = u64::MAX;
    let mut best_seq: Vec<usize> = vec![0; nw];
    let mut seq = vec![0usize; nw];
    loop {
        // evaluate
        let mut cost = 0u64;
        for w in 0..nw {
            cost += tables[w][seq[w]];
            if w > 0 {
                cost += grid.dist(ProcId(seq[w - 1] as u32), ProcId(seq[w] as u32));
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best_seq.copy_from_slice(&seq);
        }
        // next sequence (counting with most-significant digit first so the
        // first minimum found is lexicographically smallest)
        let mut i = nw;
        loop {
            if i == 0 {
                return (
                    best_seq.into_iter().map(|k| ProcId(k as u32)).collect(),
                    best_cost,
                );
            }
            i -= 1;
            seq[i] += 1;
            if seq[i] < m {
                break;
            }
            seq[i] = 0;
        }
    }
}

/// Brute-force optimal schedule for a whole (tiny) trace, unconstrained
/// memory.
pub fn exhaustive_schedule(trace: &WindowedTrace) -> Schedule {
    let grid = trace.grid();
    let centers = trace
        .iter_data()
        .map(|(_, rs)| optimal_path_exhaustive(&grid, rs).0)
        .collect();
    Schedule::new(grid, centers)
}

/// Verify one datum's cost for a given center sequence (helper shared by
/// tests).
pub fn path_cost(grid: &Grid, rs: &DataRefString, path: &[ProcId]) -> u64 {
    assert_eq!(path.len(), rs.num_windows());
    let mut cost = 0u64;
    for (w, refs) in rs.windows().enumerate() {
        cost += cost_at(grid, refs, path[w]);
    }
    for pair in path.windows(2) {
        cost += grid.dist(pair[0], pair[1]);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gomcds::{gomcds_path, Solver};
    use pim_trace::window::WindowRefs;

    #[test]
    fn gomcds_matches_exhaustive_on_small_grids() {
        let grid = Grid::new(3, 2);
        let cases: Vec<Vec<WindowRefs>> = vec![
            vec![
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2)]),
                WindowRefs::from_pairs([(grid.proc_xy(2, 1), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(0, 1), 3)]),
            ],
            vec![
                WindowRefs::from_pairs([(grid.proc_xy(1, 0), 1), (grid.proc_xy(2, 0), 2)]),
                WindowRefs::new(),
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(2, 1), 4)]),
            ],
            vec![WindowRefs::new(), WindowRefs::new()],
        ];
        for windows in cases {
            let rs = DataRefString::new(windows);
            let (ex_path, ex_cost) = optimal_path_exhaustive(&grid, &rs);
            let (go_path, go_cost) = gomcds_path(&grid, &rs, Solver::DistanceTransform);
            assert_eq!(go_cost, ex_cost, "cost mismatch");
            assert_eq!(path_cost(&grid, &rs, &go_path), go_cost);
            assert_eq!(path_cost(&grid, &rs, &ex_path), ex_cost);
        }
    }

    #[test]
    fn exhaustive_schedule_matches_gomcds_totals() {
        let grid = Grid::new(2, 2);
        let trace = WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(1, 0), 3)]),
                    WindowRefs::from_pairs([(grid.proc_xy(0, 1), 1)]),
                ],
            ],
        );
        let ex = exhaustive_schedule(&trace).evaluate(&trace).total();
        let go = crate::gomcds::gomcds_schedule(&trace, pim_array::memory::MemorySpec::unbounded())
            .evaluate(&trace)
            .total();
        assert_eq!(ex, go);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn refuses_explosive_instances() {
        let grid = Grid::new(8, 8);
        let rs = DataRefString::new(vec![WindowRefs::new(); 12]);
        optimal_path_exhaustive(&grid, &rs);
    }
}
