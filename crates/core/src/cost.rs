//! The communication cost model.
//!
//! `cost(D, T, p)` — the paper's *total communication cost of datum `D` in
//! execution window `T` when stored at processor `p`* — is the
//! volume-weighted Manhattan distance of every reference in the window:
//!
//! ```text
//! cost(D, T, p) = Σ_{(q, n) ∈ refs(D, T)}  n · dist(p, q)
//! ```
//!
//! Every scheduler needs this quantity *for every candidate processor*
//! (the paper's Algorithm 1 lines 2–4). Two implementations are provided:
//!
//! * [`cost_table_naive`] — the literal `O(m · r)` double loop (m
//!   processors, r distinct referencing processors).
//! * [`cost_table`] — `O(m + r + width + height)` via separability: under
//!   L1 the cost splits into independent x and y terms, each computable
//!   with prefix sums over the axis-projected reference weights.
//!
//! Both produce identical tables (property-tested), and the benches in
//! `pim-bench` quantify the gap (ablation A is about GOMCDS's analogous
//! trick; this one feeds SCDS/LOMCDS).

use pim_array::grid::{Grid, ProcId};
use pim_trace::window::WindowRefs;

/// Sentinel "infinite" cost used to mask full processors in capacity-
/// constrained DPs. Chosen far below `u64::MAX` so sums never overflow.
pub const INF: u64 = u64::MAX / 8;

/// Cost of serving `refs` from a datum stored at `center`.
pub fn cost_at(grid: &Grid, refs: &WindowRefs, center: ProcId) -> u64 {
    let c = grid.point_of(center);
    refs.iter()
        .map(|r| r.count as u64 * grid.point_of(r.proc).l1_dist(c))
        .sum()
}

/// Literal per-candidate scan: `out[p] = cost_at(p)` for every processor.
/// Kept as the reference implementation and for the solver ablation.
pub fn cost_table_naive(grid: &Grid, refs: &WindowRefs, out: &mut Vec<u64>) {
    out.clear();
    out.extend(grid.procs().map(|p| cost_at(grid, refs, p)));
}

/// Reusable buffers for the separable cost-table computation: the axis
/// weight projections and the per-axis cost rows. Holding one of these
/// across calls removes all per-call allocation from the hot path (the
/// [`crate::workspace::Workspace`] bundles one for the schedulers).
#[derive(Debug, Default, Clone)]
pub struct AxisScratch {
    /// x-projected weights, one slot per grid column.
    pub(crate) wx: Vec<u64>,
    /// y-projected weights, one slot per grid row.
    pub(crate) wy: Vec<u64>,
    cx: Vec<u64>,
    cy: Vec<u64>,
}

impl AxisScratch {
    /// Resize the weight rows for `grid` and zero them.
    pub(crate) fn reset_weights(&mut self, grid: &Grid) {
        self.wx.clear();
        self.wx.resize(grid.width() as usize, 0);
        self.wy.clear();
        self.wy.resize(grid.height() as usize, 0);
    }

    /// Combine the already-filled weight rows into the full `m`-entry cost
    /// table (the shared tail of [`cost_table_with`] and the cache's range
    /// queries).
    pub(crate) fn sweep_into(&mut self, grid: &Grid, out: &mut Vec<u64>) {
        axis_costs(&self.wx, &mut self.cx);
        axis_costs(&self.wy, &mut self.cy);
        out.clear();
        out.reserve(grid.num_procs());
        for &cy in &self.cy {
            for &cx in &self.cx {
                out.push(cx + cy);
            }
        }
    }
}

/// Separable cost-table computation.
///
/// Writes `out[p] = cost_at(p)` for every processor in
/// `O(m + r + width + height)` time using the L1 split
/// `Σ n·(|x−xq| + |y−yq|) = costX(x) + costY(y)`.
pub fn cost_table(grid: &Grid, refs: &WindowRefs, out: &mut Vec<u64>) {
    let mut scratch = AxisScratch::default();
    cost_table_with(grid, refs, &mut scratch, out);
}

/// [`cost_table`] with caller-owned scratch — no allocation when `scratch`
/// and `out` have warmed up to the grid's size.
pub fn cost_table_with(
    grid: &Grid,
    refs: &WindowRefs,
    scratch: &mut AxisScratch,
    out: &mut Vec<u64>,
) {
    scratch.reset_weights(grid);
    for r in refs.iter() {
        let p = grid.point_of(r.proc);
        scratch.wx[p.x as usize] += r.count as u64;
        scratch.wy[p.y as usize] += r.count as u64;
    }
    scratch.sweep_into(grid, out);
}

/// For weights `w[i]` at integer positions `i`, compute
/// `c[j] = Σ_i w[i] · |i − j|` for every `j` in `O(len)` using two sweeps,
/// written into `out` (resized, no allocation once warm).
pub(crate) fn axis_costs(weights: &[u64], out: &mut Vec<u64>) {
    let n = weights.len();
    out.clear();
    out.resize(n, 0);
    // left-to-right: contribution of weights at positions < j
    let mut mass = 0u64;
    let mut acc = 0u64;
    for j in 0..n {
        out[j] += acc;
        mass += weights[j];
        acc += mass;
    }
    // right-to-left: contribution of weights at positions > j
    mass = 0;
    acc = 0;
    for j in (0..n).rev() {
        out[j] += acc;
        mass += weights[j];
        acc += mass;
    }
}

/// Lowest-id argmin of a cost table with its cost — the shared tie-break
/// rule every scheduler uses.
pub(crate) fn argmin_table(table: &[u64]) -> (ProcId, u64) {
    let (idx, &cost) = table
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("grid has at least one processor");
    (ProcId(idx as u32), cost)
}

/// The minimum-cost processor for `refs` with deterministic tie-break
/// (lowest processor id), together with its cost. This is the paper's
/// *local optimal center* for the window.
pub fn optimal_center(grid: &Grid, refs: &WindowRefs) -> (ProcId, u64) {
    let mut table = Vec::new();
    cost_table(grid, refs, &mut table);
    argmin_table(&table)
}

/// Every processor achieving the minimum cost, ascending by id. Used by the
/// theory module (Lemma 1 and Theorem 2 quantify over *sets* of local
/// optimal centers).
pub fn optimal_centers(grid: &Grid, refs: &WindowRefs) -> Vec<ProcId> {
    let mut table = Vec::new();
    cost_table(grid, refs, &mut table);
    let best = *table.iter().min().expect("non-empty table");
    table
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == best)
        .map(|(i, _)| ProcId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::Grid;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn cost_at_examples() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(3, 3), 1)]);
        // stored at (0,0): 0 + 6
        assert_eq!(cost_at(&grid, &refs, grid.proc_xy(0, 0)), 6);
        // stored at (3,3): 12 + 0
        assert_eq!(cost_at(&grid, &refs, grid.proc_xy(3, 3)), 12);
        // stored at (1,1): 2*2 + 4
        assert_eq!(cost_at(&grid, &refs, grid.proc_xy(1, 1)), 8);
    }

    #[test]
    fn empty_refs_cost_zero_everywhere() {
        let grid = g();
        let mut t = Vec::new();
        cost_table(&grid, &WindowRefs::new(), &mut t);
        assert!(t.iter().all(|&c| c == 0));
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn fast_table_matches_naive() {
        let grid = Grid::new(5, 3);
        let refs = WindowRefs::from_pairs([
            (grid.proc_xy(0, 0), 3),
            (grid.proc_xy(4, 2), 1),
            (grid.proc_xy(2, 1), 7),
            (grid.proc_xy(4, 0), 2),
        ]);
        let mut naive = Vec::new();
        let mut fast = Vec::new();
        cost_table_naive(&grid, &refs, &mut naive);
        cost_table(&grid, &refs, &mut fast);
        assert_eq!(naive, fast);
    }

    #[test]
    fn optimal_center_single_ref() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(2, 3), 5)]);
        let (c, cost) = optimal_center(&grid, &refs);
        assert_eq!(c, grid.proc_xy(2, 3));
        assert_eq!(cost, 0);
    }

    #[test]
    fn optimal_center_weighted_median() {
        let grid = g();
        // weight 3 at (0,0), weight 1 at (3,0) → median at x=0
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3), (grid.proc_xy(3, 0), 1)]);
        let (c, cost) = optimal_center(&grid, &refs);
        assert_eq!(c, grid.proc_xy(0, 0));
        assert_eq!(cost, 3);
    }

    #[test]
    fn optimal_centers_tie_set() {
        let grid = g();
        // equal weights at (0,0) and (3,0): every x in 0..=3, y=0 is optimal
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(3, 0), 1)]);
        let centers = optimal_centers(&grid, &refs);
        assert_eq!(
            centers,
            vec![
                grid.proc_xy(0, 0),
                grid.proc_xy(1, 0),
                grid.proc_xy(2, 0),
                grid.proc_xy(3, 0)
            ]
        );
        // tie-break picks the lowest id
        assert_eq!(optimal_center(&grid, &refs).0, grid.proc_xy(0, 0));
    }

    #[test]
    fn axis_costs_small() {
        let run = |w: &[u64]| {
            let mut out = vec![99; 7]; // stale contents must not leak through
            axis_costs(w, &mut out);
            out
        };
        // weights [1,0,2] → c[0] = 0 + 2*2 = 4, c[1] = 1 + 2 = 3, c[2] = 2
        assert_eq!(run(&[1, 0, 2]), vec![4, 3, 2]);
        assert_eq!(run(&[0]), vec![0]);
        assert_eq!(run(&[]), Vec::<u64>::new());
    }

    #[test]
    fn scratch_table_matches_allocating_table() {
        let grid = Grid::new(5, 3);
        let refs = WindowRefs::from_pairs([
            (grid.proc_xy(1, 0), 4),
            (grid.proc_xy(4, 2), 2),
            (grid.proc_xy(2, 1), 1),
        ]);
        let mut plain = Vec::new();
        cost_table(&grid, &refs, &mut plain);
        let mut scratch = AxisScratch::default();
        let mut reused = Vec::new();
        for _ in 0..3 {
            cost_table_with(&grid, &refs, &mut scratch, &mut reused);
            assert_eq!(plain, reused);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the INF headroom invariant
    fn inf_is_safe_to_sum() {
        assert!(INF.checked_add(INF).is_some());
        assert!(INF + INF < u64::MAX / 2);
    }
}
