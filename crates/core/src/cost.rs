//! The communication cost model.
//!
//! `cost(D, T, p)` — the paper's *total communication cost of datum `D` in
//! execution window `T` when stored at processor `p`* — is the
//! volume-weighted Manhattan distance of every reference in the window:
//!
//! ```text
//! cost(D, T, p) = Σ_{(q, n) ∈ refs(D, T)}  n · dist(p, q)
//! ```
//!
//! Every scheduler needs this quantity *for every candidate processor*
//! (the paper's Algorithm 1 lines 2–4). Two implementations are provided:
//!
//! * [`cost_table_naive`] — the literal `O(m · r)` double loop (m
//!   processors, r distinct referencing processors).
//! * [`cost_table`] — `O(m + r + width + height)` via separability: under
//!   L1 the cost splits into independent x and y terms, each computable
//!   with prefix sums over the axis-projected reference weights.
//!
//! Both produce identical tables (property-tested), and the benches in
//! `pim-bench` quantify the gap (ablation A is about GOMCDS's analogous
//! trick; this one feeds SCDS/LOMCDS).

use pim_array::grid::{Grid, ProcId};
use pim_trace::window::WindowRefs;

/// Sentinel "infinite" cost used to mask full processors in capacity-
/// constrained DPs. Chosen far below `u64::MAX` so sums never overflow.
pub const INF: u64 = u64::MAX / 8;

/// Cost of serving `refs` from a datum stored at `center`.
pub fn cost_at(grid: &Grid, refs: &WindowRefs, center: ProcId) -> u64 {
    let c = grid.point_of(center);
    refs.iter()
        .map(|r| r.count as u64 * grid.point_of(r.proc).l1_dist(c))
        .sum()
}

/// Literal per-candidate scan: `out[p] = cost_at(p)` for every processor.
/// Kept as the reference implementation and for the solver ablation.
pub fn cost_table_naive(grid: &Grid, refs: &WindowRefs, out: &mut Vec<u64>) {
    out.clear();
    out.extend(grid.procs().map(|p| cost_at(grid, refs, p)));
}

/// Separable cost-table computation.
///
/// Writes `out[p] = cost_at(p)` for every processor in
/// `O(m + r + width + height)` time using the L1 split
/// `Σ n·(|x−xq| + |y−yq|) = costX(x) + costY(y)`.
pub fn cost_table(grid: &Grid, refs: &WindowRefs, out: &mut Vec<u64>) {
    let w = grid.width() as usize;
    let h = grid.height() as usize;

    // Axis-projected weights.
    let mut wx = vec![0u64; w];
    let mut wy = vec![0u64; h];
    for r in refs.iter() {
        let p = grid.point_of(r.proc);
        wx[p.x as usize] += r.count as u64;
        wy[p.y as usize] += r.count as u64;
    }

    let cx = axis_costs(&wx);
    let cy = axis_costs(&wy);

    out.clear();
    out.reserve(grid.num_procs());
    for y in 0..h {
        for x in 0..w {
            out.push(cx[x] + cy[y]);
        }
    }
}

/// For weights `w[i]` at integer positions `i`, compute
/// `c[j] = Σ_i w[i] · |i − j|` for every `j` in `O(len)` using two sweeps.
fn axis_costs(weights: &[u64]) -> Vec<u64> {
    let n = weights.len();
    let mut c = vec![0u64; n];
    // left-to-right: contribution of weights at positions < j
    let mut mass = 0u64;
    let mut acc = 0u64;
    for j in 0..n {
        c[j] += acc;
        mass += weights[j];
        acc += mass;
    }
    // right-to-left: contribution of weights at positions > j
    mass = 0;
    acc = 0;
    for j in (0..n).rev() {
        c[j] += acc;
        mass += weights[j];
        acc += mass;
    }
    c
}

/// The minimum-cost processor for `refs` with deterministic tie-break
/// (lowest processor id), together with its cost. This is the paper's
/// *local optimal center* for the window.
pub fn optimal_center(grid: &Grid, refs: &WindowRefs) -> (ProcId, u64) {
    let mut table = Vec::new();
    cost_table(grid, refs, &mut table);
    let (idx, &cost) = table
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("grid has at least one processor");
    (ProcId(idx as u32), cost)
}

/// Every processor achieving the minimum cost, ascending by id. Used by the
/// theory module (Lemma 1 and Theorem 2 quantify over *sets* of local
/// optimal centers).
pub fn optimal_centers(grid: &Grid, refs: &WindowRefs) -> Vec<ProcId> {
    let mut table = Vec::new();
    cost_table(grid, refs, &mut table);
    let best = *table.iter().min().expect("non-empty table");
    table
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == best)
        .map(|(i, _)| ProcId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::Grid;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn cost_at_examples() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(3, 3), 1)]);
        // stored at (0,0): 0 + 6
        assert_eq!(cost_at(&grid, &refs, grid.proc_xy(0, 0)), 6);
        // stored at (3,3): 12 + 0
        assert_eq!(cost_at(&grid, &refs, grid.proc_xy(3, 3)), 12);
        // stored at (1,1): 2*2 + 4
        assert_eq!(cost_at(&grid, &refs, grid.proc_xy(1, 1)), 8);
    }

    #[test]
    fn empty_refs_cost_zero_everywhere() {
        let grid = g();
        let mut t = Vec::new();
        cost_table(&grid, &WindowRefs::new(), &mut t);
        assert!(t.iter().all(|&c| c == 0));
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn fast_table_matches_naive() {
        let grid = Grid::new(5, 3);
        let refs = WindowRefs::from_pairs([
            (grid.proc_xy(0, 0), 3),
            (grid.proc_xy(4, 2), 1),
            (grid.proc_xy(2, 1), 7),
            (grid.proc_xy(4, 0), 2),
        ]);
        let mut naive = Vec::new();
        let mut fast = Vec::new();
        cost_table_naive(&grid, &refs, &mut naive);
        cost_table(&grid, &refs, &mut fast);
        assert_eq!(naive, fast);
    }

    #[test]
    fn optimal_center_single_ref() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(2, 3), 5)]);
        let (c, cost) = optimal_center(&grid, &refs);
        assert_eq!(c, grid.proc_xy(2, 3));
        assert_eq!(cost, 0);
    }

    #[test]
    fn optimal_center_weighted_median() {
        let grid = g();
        // weight 3 at (0,0), weight 1 at (3,0) → median at x=0
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3), (grid.proc_xy(3, 0), 1)]);
        let (c, cost) = optimal_center(&grid, &refs);
        assert_eq!(c, grid.proc_xy(0, 0));
        assert_eq!(cost, 3);
    }

    #[test]
    fn optimal_centers_tie_set() {
        let grid = g();
        // equal weights at (0,0) and (3,0): every x in 0..=3, y=0 is optimal
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(3, 0), 1)]);
        let centers = optimal_centers(&grid, &refs);
        assert_eq!(
            centers,
            vec![
                grid.proc_xy(0, 0),
                grid.proc_xy(1, 0),
                grid.proc_xy(2, 0),
                grid.proc_xy(3, 0)
            ]
        );
        // tie-break picks the lowest id
        assert_eq!(optimal_center(&grid, &refs).0, grid.proc_xy(0, 0));
    }

    #[test]
    fn axis_costs_small() {
        // weights [1,0,2] → c[0] = 0 + 2*2 = 4, c[1] = 1 + 2 = 3, c[2] = 2
        assert_eq!(axis_costs(&[1, 0, 2]), vec![4, 3, 2]);
        assert_eq!(axis_costs(&[0]), vec![0]);
        assert_eq!(axis_costs(&[]), Vec::<u64>::new());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the INF headroom invariant
    fn inf_is_safe_to_sum() {
        assert!(INF.checked_add(INF).is_some());
        assert!(INF + INF < u64::MAX / 2);
    }
}
