//! K-copy replication (generalizing [`crate::replicate`]).
//!
//! The two-copy extension adds one exactly-optimal secondary trajectory on
//! top of the GOMCDS primary. This module iterates that construction:
//! copies are added one at a time, each solved by the same DP *given* the
//! already-fixed replica trajectories (serve-from-nearest, materialize-
//! from-nearest), and kept only if it reduces the datum's total cost.
//! Greedy-by-copy is not globally optimal over all K-replica plans — the
//! joint problem is a facility-location variant — but each added copy is
//! individually optimal, the sequence of costs is non-increasing by
//! construction, and `k = 2` reproduces [`crate::replicate`] exactly
//! (tested).

use crate::gomcds::{gomcds_path, Solver};
use crate::schedule::CostBreakdown;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowRefs, WindowedTrace};
use serde::{Deserialize, Serialize};

/// A schedule with up to `k` replicas per datum per window. The first
/// replica of every window is the primary copy; all windows of a datum
/// hold at least one replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KCopySchedule {
    grid: Grid,
    /// `replicas[d][w]` — non-empty, first entry is the primary.
    replicas: Vec<Vec<Vec<ProcId>>>,
}

impl KCopySchedule {
    /// The grid this schedule targets.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of data items.
    pub fn num_data(&self) -> usize {
        self.replicas.len()
    }

    /// Number of windows.
    pub fn num_windows(&self) -> usize {
        self.replicas.first().map_or(0, Vec::len)
    }

    /// All replicas of datum `d` in window `w` (primary first).
    pub fn replicas_of(&self, d: DataId, w: usize) -> &[ProcId] {
        &self.replicas[d.index()][w]
    }

    /// Largest replica count any (datum, window) reaches.
    pub fn max_copies(&self) -> usize {
        self.replicas
            .iter()
            .flatten()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// Total replica slots beyond the primaries.
    pub fn extra_slots(&self) -> u64 {
        self.replicas
            .iter()
            .flatten()
            .map(|set| set.len() as u64 - 1)
            .sum()
    }

    /// Serve cost of one window from a replica set.
    fn serve(grid: &Grid, refs: &WindowRefs, set: &[ProcId]) -> u64 {
        refs.iter()
            .map(|r| {
                let p = grid.point_of(r.proc);
                let d = set
                    .iter()
                    .map(|&s| grid.point_of(s).l1_dist(p))
                    .min()
                    .expect("non-empty replica set");
                r.count as u64 * d
            })
            .sum()
    }

    /// Evaluate against a trace (nearest-replica reference cost, plus each
    /// replica materialized from the nearest previous-window replica).
    pub fn evaluate(&self, trace: &WindowedTrace) -> CostBreakdown {
        assert_eq!(trace.grid(), self.grid, "grid mismatch");
        assert_eq!(trace.num_data(), self.num_data(), "data count mismatch");
        let grid = &self.grid;
        let mut out = CostBreakdown::default();
        for (d, rs) in trace.iter_data() {
            let seq = &self.replicas[d.index()];
            assert_eq!(seq.len(), rs.num_windows(), "window mismatch for {d}");
            for (w, refs) in rs.windows().enumerate() {
                out.reference += Self::serve(grid, refs, &seq[w]);
                if w > 0 {
                    for &loc in &seq[w] {
                        out.movement += seq[w - 1]
                            .iter()
                            .map(|&q| grid.dist(q, loc))
                            .min()
                            .expect("non-empty previous set");
                    }
                }
            }
        }
        out
    }
}

/// Cost of a fixed replica-trajectory set for one datum (reference plus
/// materialization movement), matching [`KCopySchedule::evaluate`].
fn plan_cost(grid: &Grid, rs: &DataRefString, seq: &[Vec<ProcId>]) -> u64 {
    let mut total = 0u64;
    for (w, refs) in rs.windows().enumerate() {
        total += KCopySchedule::serve(grid, refs, &seq[w]);
        if w > 0 {
            for &loc in &seq[w] {
                total += seq[w - 1]
                    .iter()
                    .map(|&q| grid.dist(q, loc))
                    .min()
                    .expect("non-empty");
            }
        }
    }
    total
}

/// DP for one additional copy given the fixed replica set per window.
/// State per window: the new copy's location, or none. Returns the
/// per-window placement (None = no extra copy that window) and the plan's
/// total cost including the fixed replicas' costs.
fn extra_copy_dp(
    grid: &Grid,
    rs: &DataRefString,
    fixed: &[Vec<ProcId>],
    masks: Option<&[MemoryMap]>,
) -> (Vec<Option<ProcId>>, u64) {
    let m = grid.num_procs();
    let nw = rs.num_windows();

    // Movement the fixed replicas pay regardless of the new copy.
    let fixed_move = |w: usize| -> u64 {
        if w == 0 {
            return 0;
        }
        fixed[w]
            .iter()
            .map(|&loc| {
                fixed[w - 1]
                    .iter()
                    .map(|&q| grid.dist(q, loc))
                    .min()
                    .expect("non-empty")
            })
            .sum()
    };
    let available = |w: usize, p: ProcId| -> bool {
        !fixed[w].contains(&p) && masks.is_none_or(|ms| ms[w].has_room(p))
    };
    let node = |w: usize, state: usize| -> u64 {
        let refs = rs.window(w);
        if state == m {
            KCopySchedule::serve(grid, refs, &fixed[w])
        } else {
            let mut set: Vec<ProcId> = fixed[w].clone();
            set.push(ProcId(state as u32));
            KCopySchedule::serve(grid, refs, &set)
        }
    };

    let mut dp = vec![vec![u64::MAX; m + 1]; nw];
    let mut parent = vec![vec![usize::MAX; m + 1]; nw];
    for state in 0..=m {
        if state < m && !available(0, ProcId(state as u32)) {
            continue;
        }
        dp[0][state] = node(0, state); // initial distribution is free
    }
    for w in 1..nw {
        let fm = fixed_move(w);
        for state in 0..=m {
            if state < m && !available(w, ProcId(state as u32)) {
                continue;
            }
            let mut best = u64::MAX;
            let mut best_prev = usize::MAX;
            for prev in 0..=m {
                if dp[w - 1][prev] == u64::MAX {
                    continue;
                }
                let trans = if state == m {
                    0
                } else {
                    let loc = ProcId(state as u32);
                    // materialize from the nearest of: previous fixed
                    // replicas, or the previous extra copy
                    let mut src = fixed[w - 1]
                        .iter()
                        .map(|&q| grid.dist(q, loc))
                        .min()
                        .expect("non-empty");
                    if prev < m {
                        src = src.min(grid.dist(ProcId(prev as u32), loc));
                    }
                    src
                };
                let cand = dp[w - 1][prev].saturating_add(trans);
                if cand < best {
                    best = cand;
                    best_prev = prev;
                }
            }
            if best < u64::MAX {
                dp[w][state] = best + node(w, state) + fm;
                parent[w][state] = best_prev;
            }
        }
    }

    let (mut state, &total) = dp[nw - 1]
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("dp non-empty");
    let mut out = vec![None; nw];
    for w in (0..nw).rev() {
        out[w] = (state != m).then_some(ProcId(state as u32));
        if w > 0 {
            state = parent[w][state];
        }
    }
    (out, total)
}

/// Build a K-copy schedule: GOMCDS primaries, then up to `k − 1` extra
/// copies per datum added greedily (each exactly optimal given the copies
/// before it, kept only when it strictly reduces the datum's cost).
///
/// # Panics
/// Panics when `k == 0` or the array cannot hold one copy of every datum.
pub fn kcopy_schedule(trace: &WindowedTrace, spec: MemorySpec, k: usize) -> KCopySchedule {
    assert!(k >= 1, "need at least one copy");
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    assert!(
        spec.feasible(&grid, nd),
        "memory spec cannot hold {nd} data items on {grid}"
    );
    let bounded = spec.capacity_per_proc != u32::MAX;
    let mut mems: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();

    // Primaries, identical to plain GOMCDS ordering.
    let mut replicas: Vec<Vec<Vec<ProcId>>> = Vec::with_capacity(nd);
    for (_, rs) in trace.iter_data() {
        let path = if bounded {
            crate::gomcds::solve_masked_path(&grid, rs, &mems)
                .expect("every window retains a free slot")
        } else {
            gomcds_path(&grid, rs, Solver::DistanceTransform).0
        };
        if bounded {
            for (w, &p) in path.iter().enumerate() {
                mems[w].allocate(p).expect("masked path avoids full slots");
            }
        }
        replicas.push(path.into_iter().map(|p| vec![p]).collect());
    }

    // Extra copies, one round at a time.
    for _round in 1..k {
        for (d, rs) in trace.iter_data() {
            let seq = &replicas[d.index()];
            let current = plan_cost(&grid, rs, seq);
            let (extra, with_extra) =
                extra_copy_dp(&grid, rs, seq, bounded.then_some(mems.as_slice()));
            if with_extra < current {
                let seq = &mut replicas[d.index()];
                for (w, slot) in extra.iter().enumerate() {
                    if let Some(p) = slot {
                        if bounded {
                            mems[w].allocate(*p).expect("DP masked full slots");
                        }
                        seq[w].push(*p);
                    }
                }
            }
        }
    }
    KCopySchedule { grid, replicas }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gomcds::gomcds_schedule;
    use crate::replicate::replicated_schedule;

    fn grid() -> Grid {
        Grid::new(4, 4)
    }

    /// Three distant clusters referencing the same datum every window.
    fn triple_hotspot() -> WindowedTrace {
        let g = grid();
        let win = || {
            WindowRefs::from_pairs([
                (g.proc_xy(0, 0), 4),
                (g.proc_xy(3, 0), 4),
                (g.proc_xy(0, 3), 4),
            ])
        };
        WindowedTrace::from_parts(g, vec![vec![win(), win(), win()]])
    }

    #[test]
    fn k1_equals_gomcds() {
        let t = triple_hotspot();
        let spec = MemorySpec::unbounded();
        let k1 = kcopy_schedule(&t, spec, 1);
        assert_eq!(k1.max_copies(), 1);
        assert_eq!(
            k1.evaluate(&t).total(),
            gomcds_schedule(&t, spec).evaluate(&t).total()
        );
    }

    #[test]
    fn k2_matches_replicate_module() {
        let t = triple_hotspot();
        let spec = MemorySpec::unbounded();
        let k2 = kcopy_schedule(&t, spec, 2);
        let r2 = replicated_schedule(&t, spec);
        assert_eq!(k2.evaluate(&t).total(), r2.evaluate(&t).total());
    }

    #[test]
    fn more_copies_never_hurt_and_three_zeroes_triple_hotspots() {
        let t = triple_hotspot();
        let spec = MemorySpec::unbounded();
        let costs: Vec<u64> = (1..=4)
            .map(|k| kcopy_schedule(&t, spec, k).evaluate(&t).total())
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0], "costs must be non-increasing: {costs:?}");
        }
        // three clusters, three copies → zero reference and movement cost
        assert_eq!(costs[2], 0, "{costs:?}");
        let k3 = kcopy_schedule(&t, spec, 3);
        assert_eq!(k3.max_copies(), 3);
    }

    #[test]
    fn capacity_respected_per_window() {
        let g = grid();
        let win = |p: ProcId| WindowRefs::from_pairs([(p, 2)]);
        let t = WindowedTrace::from_parts(
            g,
            vec![
                vec![win(g.proc_xy(0, 0)), win(g.proc_xy(0, 0))],
                vec![win(g.proc_xy(3, 3)), win(g.proc_xy(3, 3))],
            ],
        );
        let spec = MemorySpec::uniform(1);
        let s = kcopy_schedule(&t, spec, 3);
        for w in 0..t.num_windows() {
            let mut occ = vec![0u32; g.num_procs()];
            for d in 0..t.num_data() {
                for &p in s.replicas_of(DataId(d as u32), w) {
                    occ[p.index()] += 1;
                }
            }
            assert!(occ.iter().all(|&n| n <= 1), "window {w}: {occ:?}");
        }
    }

    #[test]
    fn unreferenced_data_stay_single_copy() {
        let g = grid();
        let t = WindowedTrace::from_parts(g, vec![vec![WindowRefs::new(); 3]]);
        let s = kcopy_schedule(&t, MemorySpec::unbounded(), 4);
        assert_eq!(s.max_copies(), 1);
        assert_eq!(s.extra_slots(), 0);
        assert_eq!(s.evaluate(&t).total(), 0);
    }
}
