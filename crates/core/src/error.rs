//! Typed scheduling errors.
//!
//! Capacity exhaustion used to be a panic (`assert!`/`expect` deep inside
//! the placement loops). Legal inputs can hit it — any trace with more
//! data than the grid's memory slots — so every [`crate::Scheduler`] now
//! returns a [`SchedError`] instead, and the CLI turns it into a nonzero
//! exit with a one-line message rather than a backtrace.

use pim_trace::ids::DataId;
use std::fmt;

/// Why a scheduling run could not produce a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The requested scheduler name is not in the registry.
    UnknownScheduler(String),
    /// The memory policy cannot hold the working set: either infeasible
    /// up front (more data than total slots — `datum` is `None`), or a
    /// specific datum found every candidate processor full.
    CapacityExhausted {
        /// The datum that could not be placed, when known.
        datum: Option<DataId>,
        /// The execution window where placement failed, when known.
        window: Option<usize>,
    },
    /// A precedence-aware run was handed a task DAG that does not match
    /// the trace (wrong window count, incomplete ownership cover, …).
    DagMismatch(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::UnknownScheduler(name) => {
                write!(f, "no scheduler registered under {name:?}")
            }
            SchedError::CapacityExhausted { datum, window } => {
                write!(f, "memory capacity exhausted")?;
                if let Some(d) = datum {
                    write!(f, " placing datum {}", d.0)?;
                }
                if let Some(w) = window {
                    write!(f, " in window {w}")?;
                }
                write!(f, ": the memory spec cannot hold the working set")
            }
            SchedError::DagMismatch(msg) => {
                write!(f, "task dag does not match the trace: {msg}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Upfront feasibility gate shared by every scheduler: total slots must
/// hold every datum at once.
pub(crate) fn ensure_feasible(
    grid: &pim_array::grid::Grid,
    spec: pim_array::memory::MemorySpec,
    num_data: usize,
) -> Result<(), SchedError> {
    if spec.feasible(grid, num_data) {
        Ok(())
    } else {
        Err(SchedError::CapacityExhausted {
            datum: None,
            window: None,
        })
    }
}

/// Shorthand for a placement-time exhaustion error.
pub(crate) fn exhausted(datum: DataId, window: Option<usize>) -> SchedError {
    SchedError::CapacityExhausted {
        datum: Some(datum),
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_site() {
        let e = exhausted(DataId(7), Some(3));
        let msg = e.to_string();
        assert!(msg.contains("datum 7"), "{msg}");
        assert!(msg.contains("window 3"), "{msg}");
        // The legacy panic message promised "cannot hold"; keep the
        // substring so wrapper `# Panics` docs and tests stay truthful.
        assert!(msg.contains("cannot hold"), "{msg}");
        let up_front = SchedError::CapacityExhausted {
            datum: None,
            window: None,
        };
        assert!(up_front.to_string().contains("cannot hold"));
        let unknown = SchedError::UnknownScheduler("nope".into());
        assert!(unknown.to_string().contains("nope"));
    }
}
