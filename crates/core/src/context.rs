//! Shared execution context for pluggable schedulers.
//!
//! A [`SchedContext`] bundles everything a [`crate::registry::Scheduler`]
//! needs beyond the trace itself: the grid view, the memory policy and its
//! resolved [`MemorySpec`], the shared per-trace [`CostCache`], a reusable
//! [`Workspace`], and an optional [`Pool`] for per-datum parallelism. The
//! context — not the scheduler — decides the *execution mode*:
//!
//! * **cached** (the default): the context owns a [`CostCache`] and every
//!   scheduler serves its cost tables from prefix sums;
//! * **uncached**: no cache is built and schedulers fall back to the
//!   pre-cache reference implementations (the bit-identity oracles);
//! * **parallel**: a [`Pool`] is attached; schedulers that support
//!   per-datum parallelism use it under *every* memory policy. Without a
//!   capacity constraint the whole schedule is computed in parallel (the
//!   per-datum subproblems are independent). Under a bounded policy the
//!   schedulers run a deterministic **two-phase** scheme: phase 1 computes
//!   the pure, order-independent per-datum quantities (cost tables, center
//!   paths, groupings) in parallel; phase 2 replays capacity assignment
//!   sequentially in datum order, exactly as the sequential run would —
//!   so the output is bit-identical regardless of thread count.
//!
//! All modes are property-tested bit-identical for every registered
//! scheduler × every memory policy in `tests/cache_equivalence.rs`.

use crate::cache::CostCache;
use crate::pipeline::MemoryPolicy;
use crate::workspace::Workspace;
use pim_array::grid::Grid;
use pim_array::memory::MemorySpec;
use pim_metrics::Metrics;
use pim_par::Pool;
use pim_trace::dag::TaskDag;
use pim_trace::window::WindowedTrace;

/// Whether (and how) task precedence constrains a scheduling run.
///
/// The default is [`PrecedencePolicy::None`]: every scheduler behaves
/// exactly as the precedence-free paper model. Attaching a DAG lets the
/// precedence-aware schedulers (`list-scds`, `edf-scds`) weight and order
/// their placement decisions by task priority; precedence-oblivious
/// schedulers simply ignore it.
#[derive(Debug, Clone, Copy, Default)]
pub enum PrecedencePolicy<'t> {
    /// No precedence constraints: the all-ready-at-window-start model.
    #[default]
    None,
    /// Placement is informed by this task DAG.
    Dag(&'t TaskDag),
}

impl<'t> PrecedencePolicy<'t> {
    /// The attached DAG, if any.
    pub fn dag(&self) -> Option<&'t TaskDag> {
        match self {
            PrecedencePolicy::None => None,
            PrecedencePolicy::Dag(dag) => Some(dag),
        }
    }
}

/// Execution context owned by one scheduling run and shared across any
/// number of schedulers (the cache and workspace amortize across calls).
/// The lifetime ties the context to the trace whose reference strings the
/// (lazy) [`CostCache`] serves from.
#[derive(Debug)]
pub struct SchedContext<'t> {
    grid: Grid,
    policy: MemoryPolicy,
    spec: MemorySpec,
    cache: Option<CostCache<'t>>,
    ws: Workspace,
    pool: Option<Pool>,
    metrics: Metrics,
    precedence: PrecedencePolicy<'t>,
}

impl<'t> SchedContext<'t> {
    /// Cached context: wraps the trace in a (lazy) per-trace [`CostCache`].
    pub fn new(trace: &'t WindowedTrace, policy: MemoryPolicy) -> Self {
        SchedContext::with_cache(trace, policy, CostCache::build(trace))
    }

    /// Cached context around a prebuilt cost cache (shares the cache — and
    /// any prefix tables it has already built — with other users of the
    /// same trace).
    pub fn with_cache(
        trace: &'t WindowedTrace,
        policy: MemoryPolicy,
        cache: CostCache<'t>,
    ) -> Self {
        SchedContext {
            grid: trace.grid(),
            policy,
            spec: policy.resolve(trace),
            cache: Some(cache),
            ws: Workspace::new(),
            pool: None,
            metrics: Metrics::disabled(),
            precedence: PrecedencePolicy::None,
        }
    }

    /// Uncached reference context: schedulers re-walk raw reference strings
    /// exactly as the seed implementation did.
    pub fn uncached(trace: &'t WindowedTrace, policy: MemoryPolicy) -> Self {
        SchedContext {
            grid: trace.grid(),
            policy,
            spec: policy.resolve(trace),
            cache: None,
            ws: Workspace::new(),
            pool: None,
            metrics: Metrics::disabled(),
            precedence: PrecedencePolicy::None,
        }
    }

    /// Attach a worker pool for per-datum parallelism.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attach a precedence policy (a task DAG). Precedence-aware
    /// schedulers read it through [`SchedContext::dag`]; everything else
    /// ignores it, so attaching a DAG never perturbs oblivious schedulers.
    pub fn with_precedence(mut self, precedence: PrecedencePolicy<'t>) -> Self {
        self.precedence = precedence;
        self
    }

    /// Attach a metrics sink. An enabled sink is installed into the owned
    /// cost cache (cache-behavior counters) and the workspace (capacity
    /// displacement); schedulers record into it but never read from it, so
    /// the schedule stays bit-identical with metrics on or off.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        if let (Some(stats), Some(cache)) = (metrics.cache_stats(), self.cache.as_mut()) {
            cache.set_stats(&stats);
        }
        self.ws.metrics = metrics.clone();
        self.metrics = metrics;
        self
    }

    /// The metrics sink of this run (disabled by default).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The processor grid of the trace this context was built for.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// The memory policy this run schedules under.
    pub fn policy(&self) -> MemoryPolicy {
        self.policy
    }

    /// The policy resolved against the trace.
    pub fn spec(&self) -> MemorySpec {
        self.spec
    }

    /// The precedence policy of this run.
    pub fn precedence(&self) -> PrecedencePolicy<'t> {
        self.precedence
    }

    /// The attached task DAG, when precedence applies.
    pub fn dag(&self) -> Option<&'t TaskDag> {
        self.precedence.dag()
    }

    /// The shared cost cache, when this is a cached context.
    pub fn cache(&self) -> Option<&CostCache<'t>> {
        self.cache.as_ref()
    }

    /// The attached pool, regardless of whether parallelism applies.
    pub fn pool(&self) -> Option<Pool> {
        self.pool
    }

    /// The pool to use for per-datum parallel scheduling, or `None` when
    /// the run must stay sequential: parallelism applies whenever a pool is
    /// attached and the cache is present (the parallel paths read from it).
    /// Bounded policies parallelize too — schedulers split into a parallel
    /// pure phase and a sequential capacity-replay phase (see the module
    /// docs), so determinism never depends on thread count. Uncached runs
    /// stay sequential: they exist to reproduce the seed implementations
    /// verbatim.
    pub fn parallel_pool(&self) -> Option<Pool> {
        match (self.pool, &self.cache) {
            (Some(pool), Some(_)) => Some(pool),
            _ => None,
        }
    }

    /// Split-borrow the cache (if cached) and the workspace — the shape
    /// every `*_cached` scheduler entry point wants.
    pub fn cache_and_ws(&mut self) -> (Option<&CostCache<'t>>, &mut Workspace) {
        (self.cache.as_ref(), &mut self.ws)
    }

    /// The reusable scratch workspace.
    pub fn workspace(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Swap the context's workspace with a caller-owned one (used by the
    /// deprecated `schedule_cached` shim to honour its warm-buffer
    /// contract).
    pub(crate) fn swap_workspace(&mut self, ws: &mut Workspace) {
        core::mem::swap(&mut self.ws, ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn trace() -> WindowedTrace {
        let grid = Grid::new(3, 3);
        WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new(); 2]; 2])
    }

    #[test]
    fn cached_context_owns_cache() {
        let t = trace();
        let ctx = SchedContext::new(&t, MemoryPolicy::Unbounded);
        assert!(ctx.cache().is_some());
        assert_eq!(ctx.grid(), t.grid());
        assert_eq!(ctx.spec().capacity_per_proc, u32::MAX);
    }

    #[test]
    fn uncached_context_has_no_cache() {
        let t = trace();
        let ctx = SchedContext::uncached(&t, MemoryPolicy::Capacity(4));
        assert!(ctx.cache().is_none());
        assert_eq!(ctx.spec().capacity_per_proc, 4);
    }

    #[test]
    fn precedence_defaults_to_none() {
        let t = trace();
        let ctx = SchedContext::new(&t, MemoryPolicy::Unbounded);
        assert!(ctx.dag().is_none());
        let dag = pim_trace::dag::TaskDag::new(2, vec![], vec![]).unwrap();
        let ctx = SchedContext::new(&t, MemoryPolicy::Unbounded)
            .with_precedence(PrecedencePolicy::Dag(&dag));
        assert_eq!(ctx.dag().map(|d| d.num_windows()), Some(2));
    }

    #[test]
    fn parallel_pool_requires_pool_and_cache() {
        let t = trace();
        let pool = Pool::serial();
        let unbounded = SchedContext::new(&t, MemoryPolicy::Unbounded).with_pool(pool);
        assert!(unbounded.parallel_pool().is_some());
        // Bounded policies parallelize via the two-phase scheme.
        let bounded = SchedContext::new(&t, MemoryPolicy::Capacity(2)).with_pool(pool);
        assert!(bounded.parallel_pool().is_some());
        // Uncached runs reproduce the seed implementations and stay serial.
        let uncached = SchedContext::uncached(&t, MemoryPolicy::Unbounded).with_pool(pool);
        assert!(uncached.parallel_pool().is_none());
        let no_pool = SchedContext::new(&t, MemoryPolicy::Unbounded);
        assert!(no_pool.parallel_pool().is_none());
    }
}
