//! Global-Optimal Multiple-Center Data Scheduling (paper Algorithm 2).
//!
//! For each datum the paper builds an edge-weighted DAG — the *cost
//! graph* — with one node per (window, processor) pair, a pseudo source and
//! sink, and edge weights combining the reference cost of storing the datum
//! at a processor during a window with the movement cost between
//! consecutive windows' processors. The shortest s→d path is the globally
//! optimal center sequence.
//!
//! The graph is layered, so the shortest path is a dynamic program:
//!
//! ```text
//! dp[0][k]   = refcost(0, k)
//! dp[w][k]   = refcost(w, k) + min_j ( dp[w−1][j] + dist(j, k) )
//! answer     = min_k dp[n−1][k]
//! ```
//!
//! Two solvers compute the inner minimum:
//!
//! * [`Solver::Naive`] — the literal `O(m²)` scan per window (the paper's
//!   formulation; `m` = processors).
//! * [`Solver::DistanceTransform`] — the `O(m)` two-pass L1 distance
//!   transform from [`crate::dt`], giving `O(n·m)` per datum.
//!
//! Node costs (the per-window reference cost tables) are needed twice per
//! window — once in the forward pass, once during backtracking — so the
//! entry points route them through a [`DatumCostCache`], which serves any
//! window (or grouped window range) in `O(width + height + m)` from prefix
//! sums. The pre-cache implementations survive as `*_uncached` references,
//! property-tested bit-identical to the cached paths.
//!
//! Both solvers produce bit-identical schedules (shared tie-breaking,
//! verified by tests and the `ablation_solver` bench). Memory capacity is
//! honoured by masking full (window, processor) slots with [`INF`] node
//! cost and re-running nothing: data are processed in ascending id order,
//! each allocating its path's slots before the next datum solves.

use crate::cache::{CostCache, DatumCostCache};
use crate::cost::{cost_table_with, AxisScratch, INF};
use crate::error::{ensure_feasible, exhausted, SchedError};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use core::ops::Range;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::window::{DataRefString, WindowedTrace};
use serde::{Deserialize, Serialize};

/// Inner-minimum strategy for the layered shortest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Solver {
    /// `O(m²)` per window — the paper's literal cost-graph relaxation.
    Naive,
    /// `O(m)` per window via the L1 distance transform.
    DistanceTransform,
}

/// Where the DP gets its per-window node costs from.
enum NodeSource<'a> {
    /// Walk the raw reference string each time (pre-cache reference path).
    Raw(&'a DataRefString),
    /// Serve each window from the datum's prefix-sum cache.
    Cached(&'a DatumCostCache<'a>),
    /// Serve grouped window ranges from the cache — layer `g` of the DP is
    /// the merged range `ranges[g]` (grouping's regrouped string, without
    /// materializing it).
    CachedRanges(&'a DatumCostCache<'a>, &'a [Range<usize>]),
}

impl NodeSource<'_> {
    fn num_layers(&self) -> usize {
        match self {
            NodeSource::Raw(rs) => rs.num_windows(),
            NodeSource::Cached(c) => c.num_windows(),
            NodeSource::CachedRanges(_, ranges) => ranges.len(),
        }
    }

    /// Node costs of layer `w`: the reference cost table with full
    /// processors masked to [`INF`].
    fn node_costs(
        &self,
        grid: &Grid,
        masks: Option<&[MemoryMap]>,
        w: usize,
        axes: &mut AxisScratch,
        out: &mut Vec<u64>,
    ) {
        match self {
            NodeSource::Raw(rs) => cost_table_with(grid, rs.window(w), axes, out),
            NodeSource::Cached(c) => c.window_table(w, axes, out),
            NodeSource::CachedRanges(c, ranges) => {
                c.range_table(ranges[w].start, ranges[w].end, axes, out)
            }
        }
        if let Some(maps) = masks {
            for (k, slot) in out.iter_mut().enumerate() {
                if !maps[w].has_room(ProcId(k as u32)) {
                    *slot = INF;
                }
            }
        }
    }
}

/// The unconstrained optimal center sequence and its cost for one datum.
///
/// ```
/// use pim_array::grid::Grid;
/// use pim_trace::window::{DataRefString, WindowRefs};
/// use pim_sched::gomcds::{gomcds_path, Solver};
///
/// let grid = Grid::new(4, 4);
/// let rs = DataRefString::new(vec![
///     WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
///     WindowRefs::from_pairs([(grid.proc_xy(3, 3), 10)]),
/// ]);
/// let (path, cost) = gomcds_path(&grid, &rs, Solver::DistanceTransform);
/// // moving once (6 hops) beats serving 10 remote references
/// assert_eq!(path, vec![grid.proc_xy(0, 0), grid.proc_xy(3, 3)]);
/// assert_eq!(cost, 6);
/// ```
pub fn gomcds_path(grid: &Grid, rs: &DataRefString, solver: Solver) -> (Vec<ProcId>, u64) {
    gomcds_path_weighted(grid, rs, solver, 1)
}

/// [`gomcds_path`] served from a prebuilt per-datum cache and a reusable
/// workspace — the hot-path form used by the pipeline.
pub fn gomcds_path_cached(
    grid: &Grid,
    cache: &DatumCostCache,
    solver: Solver,
    ws: &mut Workspace,
) -> (Vec<ProcId>, u64) {
    solve_layered(grid, &NodeSource::Cached(cache), None, solver, ws, 1)
        .expect("unconstrained path always feasible")
}

/// Optimal center sequence over *grouped* windows: layer `g` of the DP is
/// the merged range `groups[g]`. Equivalent to
/// `gomcds_path(grid, &rs.regrouped(groups), solver)` without building the
/// regrouped string.
pub fn gomcds_path_ranges(
    grid: &Grid,
    cache: &DatumCostCache,
    groups: &[Range<usize>],
    ws: &mut Workspace,
) -> (Vec<ProcId>, u64) {
    solve_layered(
        grid,
        &NodeSource::CachedRanges(cache, groups),
        None,
        Solver::DistanceTransform,
        ws,
        1,
    )
    .expect("unconstrained path always feasible")
}

/// Like [`gomcds_path`] but charging `move_weight` per hop of data
/// movement — the datum's transfer volume. The paper's model is
/// `move_weight = 1`; the `sweep_movement` ablation studies how the
/// optimal policy collapses toward SCDS as data get heavier.
pub fn gomcds_path_weighted(
    grid: &Grid,
    rs: &DataRefString,
    solver: Solver,
    move_weight: u64,
) -> (Vec<ProcId>, u64) {
    let mut ws = Workspace::new();
    solve_layered(
        grid,
        &NodeSource::Raw(rs),
        None,
        solver,
        &mut ws,
        move_weight,
    )
    .expect("unconstrained path always feasible")
}

/// GOMCDS with per-datum movement volumes (unconstrained memory): datum
/// `d`'s moves cost `volumes[d]` per hop. Each datum's path is exactly
/// optimal for its own volume.
///
/// # Panics
/// Panics when `volumes.len() != trace.num_data()`.
pub fn gomcds_schedule_volumes(trace: &WindowedTrace, volumes: &[u64]) -> Schedule {
    assert_eq!(volumes.len(), trace.num_data(), "volumes length mismatch");
    let grid = trace.grid();
    let mut ws = Workspace::new();
    let centers = trace
        .iter_data()
        .map(|(d, rs)| {
            solve_layered(
                &grid,
                &NodeSource::Raw(rs),
                None,
                Solver::DistanceTransform,
                &mut ws,
                volumes[d.index()].max(1),
            )
            .expect("unconstrained path always feasible")
            .0
        })
        .collect();
    Schedule::new(grid, centers)
}

/// Capacity-masked optimal center sequence (one [`MemoryMap`] per window);
/// `None` when some window has no free processor. Used by the grouping
/// pipeline's fragmentation fallback.
pub(crate) fn solve_masked_path(
    grid: &Grid,
    rs: &DataRefString,
    masks: &[MemoryMap],
) -> Option<Vec<ProcId>> {
    let mut ws = Workspace::new();
    solve_layered(
        grid,
        &NodeSource::Raw(rs),
        Some(masks),
        Solver::DistanceTransform,
        &mut ws,
        1,
    )
    .map(|(path, _)| path)
}

/// Cache-served masked path over single windows.
pub(crate) fn solve_masked_path_cached(
    grid: &Grid,
    cache: &DatumCostCache,
    masks: &[MemoryMap],
    ws: &mut Workspace,
) -> Option<Vec<ProcId>> {
    solve_layered(
        grid,
        &NodeSource::Cached(cache),
        Some(masks),
        Solver::DistanceTransform,
        ws,
        1,
    )
    .map(|(path, _)| path)
}

/// Cache-served masked path over grouped window ranges (`masks[g]` masks
/// group `g`).
pub(crate) fn solve_masked_ranges(
    grid: &Grid,
    cache: &DatumCostCache,
    groups: &[Range<usize>],
    masks: &[MemoryMap],
    ws: &mut Workspace,
) -> Option<Vec<ProcId>> {
    solve_layered(
        grid,
        &NodeSource::CachedRanges(cache, groups),
        Some(masks),
        Solver::DistanceTransform,
        ws,
        1,
    )
    .map(|(path, _)| path)
}

/// Solve one datum's layered shortest path. `masks` (one map per layer)
/// marks full processors; `move_weight` is the per-hop movement charge;
/// returns `None` when no feasible path exists.
fn solve_layered(
    grid: &Grid,
    src: &NodeSource<'_>,
    masks: Option<&[MemoryMap]>,
    solver: Solver,
    ws: &mut Workspace,
    move_weight: u64,
) -> Option<(Vec<ProcId>, u64)> {
    let m = grid.num_procs();
    let nw = src.num_layers();
    let Workspace {
        axes,
        dp,
        node,
        relaxed,
        nodes_all,
        ..
    } = ws;
    dp.clear();
    dp.reserve(nw * m);
    // Cache-served node rows are memoized during the forward pass so the
    // backtrack reads them instead of re-deriving each window. The raw
    // source skips this: it is the frozen pre-cache reference whose
    // two-walk behaviour the cached-vs-uncached bench measures.
    let memoize = !matches!(src, NodeSource::Raw(_));
    nodes_all.clear();
    if memoize {
        nodes_all.reserve(nw * m);
    }

    for w in 0..nw {
        src.node_costs(grid, masks, w, axes, node);
        if memoize {
            nodes_all.extend_from_slice(node);
        }
        if w == 0 {
            dp.extend_from_slice(node);
        } else {
            {
                let prev = &dp[(w - 1) * m..w * m];
                match solver {
                    Solver::Naive => {
                        crate::dt::l1_relax_naive_weighted(grid, prev, move_weight, relaxed)
                    }
                    Solver::DistanceTransform => {
                        crate::dt::l1_relax_weighted(grid, prev, move_weight, relaxed)
                    }
                }
            }
            for k in 0..m {
                let v = relaxed[k].saturating_add(node[k]);
                dp.push(v);
            }
        }
    }

    // Select the sink predecessor: lowest-id argmin of the last row.
    let last = &dp[(nw - 1) * m..nw * m];
    let (mut k, &best) = last
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("non-empty grid");
    if best >= INF {
        return None;
    }

    // Backtrack: find the lowest-id predecessor achieving each dp value.
    let mut path = vec![ProcId(0); nw];
    path[nw - 1] = ProcId(k as u32);
    for w in (1..nw).rev() {
        let noderow: &[u64] = if memoize {
            &nodes_all[w * m..(w + 1) * m]
        } else {
            src.node_costs(grid, masks, w, axes, node);
            node
        };
        let need = dp[w * m + k] - noderow[k];
        let prev_row = &dp[(w - 1) * m..w * m];
        let kp = grid.point_of(ProcId(k as u32));
        let mut found = None;
        for j in 0..m {
            let hop = move_weight.saturating_mul(grid.point_of(ProcId(j as u32)).l1_dist(kp));
            if prev_row[j].saturating_add(hop) == need {
                found = Some(j);
                break;
            }
        }
        k = found.expect("dp backtrack must find a predecessor");
        path[w - 1] = ProcId(k as u32);
    }
    Some((path, best))
}

/// A saved DP prefix of one datum's unconstrained layered solve: forward
/// rows `0..layers` of `dp` and the memoized node rows, each `layers × m`.
/// Because row `w` is a pure function of the node rows `0..=w`, a
/// checkpoint whose prefix windows are unedited resumes bit-identically —
/// the incremental engine truncates `layers` to the first dirty window on
/// every edit and [`gomcds_path_resumable`] recomputes only from there
/// ("first dirty layer" resume).
#[derive(Debug, Default, Clone)]
pub(crate) struct DpCheckpoint {
    /// Number of valid leading DP layers (windows).
    pub layers: usize,
    /// Row-major `layers × m` forward DP values.
    pub dp: Vec<u64>,
    /// Row-major `layers × m` node-cost rows.
    pub nodes: Vec<u64>,
}

impl DpCheckpoint {
    /// Invalidate every layer from `first_dirty` on.
    pub fn truncate(&mut self, first_dirty: usize, m: usize) {
        if self.layers > first_dirty {
            self.layers = first_dirty;
            self.dp.truncate(first_dirty * m);
            self.nodes.truncate(first_dirty * m);
        }
    }
}

/// [`gomcds_path_cached`] for the unconstrained distance-transform case,
/// resuming from (and optionally saving) a [`DpCheckpoint`]. Bit-identical
/// to a from-scratch [`gomcds_path_cached`] call as long as the
/// checkpoint's `layers` prefix predates every edited window — guaranteed
/// by the engine's truncate-on-edit discipline (unit-tested below).
pub(crate) fn gomcds_path_resumable(
    grid: &Grid,
    cache: &DatumCostCache,
    ws: &mut Workspace,
    resume: Option<&DpCheckpoint>,
    save: Option<&mut DpCheckpoint>,
) -> (Vec<ProcId>, u64) {
    let m = grid.num_procs();
    let nw = cache.num_windows();
    let Workspace {
        axes,
        dp,
        node,
        relaxed,
        nodes_all,
        ..
    } = ws;
    dp.clear();
    dp.reserve(nw * m);
    nodes_all.clear();
    nodes_all.reserve(nw * m);
    let start = resume.map_or(0, |c| c.layers.min(nw));
    if let Some(c) = resume {
        dp.extend_from_slice(&c.dp[..start * m]);
        nodes_all.extend_from_slice(&c.nodes[..start * m]);
    }

    for w in start..nw {
        cache.window_table(w, axes, node);
        nodes_all.extend_from_slice(node);
        if w == 0 {
            dp.extend_from_slice(node);
        } else {
            {
                let prev = &dp[(w - 1) * m..w * m];
                crate::dt::l1_relax_weighted(grid, prev, 1, relaxed);
            }
            for k in 0..m {
                dp.push(relaxed[k].saturating_add(node[k]));
            }
        }
    }

    if let Some(out) = save {
        out.layers = nw;
        out.dp.clear();
        out.dp.extend_from_slice(dp);
        out.nodes.clear();
        out.nodes.extend_from_slice(nodes_all);
    }

    // Sink and backtrack exactly as `solve_layered` (lowest-id argmin,
    // lowest-id predecessor) so resumed paths tie-break identically.
    let last = &dp[(nw - 1) * m..nw * m];
    let (mut k, &best) = last
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("non-empty grid");
    let mut path = vec![ProcId(0); nw];
    path[nw - 1] = ProcId(k as u32);
    for w in (1..nw).rev() {
        let noderow = &nodes_all[w * m..(w + 1) * m];
        let need = dp[w * m + k] - noderow[k];
        let prev_row = &dp[(w - 1) * m..w * m];
        let kp = grid.point_of(ProcId(k as u32));
        let mut found = None;
        for j in 0..m {
            let hop = grid.point_of(ProcId(j as u32)).l1_dist(kp);
            if prev_row[j].saturating_add(hop) == need {
                found = Some(j);
                break;
            }
        }
        k = found.expect("dp backtrack must find a predecessor");
        path[w - 1] = ProcId(k as u32);
    }
    (path, best)
}

/// Compute the GOMCDS schedule with the distance-transform solver.
pub fn gomcds_schedule(trace: &WindowedTrace, spec: MemorySpec) -> Schedule {
    gomcds_schedule_with(trace, spec, Solver::DistanceTransform)
}

/// Compute the GOMCDS schedule with an explicit solver. Builds a per-datum
/// [`DatumCostCache`] so each window's cost table is derived from prefix
/// sums (and reused by the backtrack) instead of walking the reference
/// string twice.
///
/// # Panics
/// Panics if the array's total memory cannot hold every datum. Use the
/// [`crate::Run`] pipeline (or [`gomcds_schedule_cached`]) for a typed
/// [`SchedError`] instead.
pub fn gomcds_schedule_with(trace: &WindowedTrace, spec: MemorySpec, solver: Solver) -> Schedule {
    let cache = CostCache::build(trace);
    let mut ws = Workspace::new();
    gomcds_schedule_cached(trace, spec, solver, &cache, &mut ws).unwrap_or_else(|e| panic!("{e}"))
}

/// Pre-cache reference implementation: identical output, node costs walked
/// from the raw reference strings each time. Kept for the equivalence
/// property tests and the cached-vs-uncached bench.
pub fn gomcds_schedule_with_uncached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    solver: Solver,
) -> Result<Schedule, SchedError> {
    let mut ws = Workspace::new();
    gomcds_schedule_driver(trace, spec, solver, &mut ws, None)
}

/// [`gomcds_schedule_with`] served from a shared per-trace cost cache and
/// caller-owned workspace (no per-call allocation once warm).
pub fn gomcds_schedule_cached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    solver: Solver,
    cache: &CostCache,
    ws: &mut Workspace,
) -> Result<Schedule, SchedError> {
    gomcds_schedule_driver(trace, spec, solver, ws, Some(cache))
}

/// Two-phase parallel GOMCDS under a bounded memory policy, bit-identical
/// to the sequential [`gomcds_schedule_cached`].
///
/// Phase 1 solves every datum's *unconstrained* shortest path in parallel
/// (pure, order-independent). Phase 2 replays capacity assignment
/// sequentially in datum-id order: when a datum's unconstrained path still
/// has room in every window, the masked DP the sequential run would solve
/// returns exactly that path (masking only raises node costs, and it
/// raises none along a free path, so the DP values, the lowest-index sink
/// argmin, and every lowest-index backtrack step are unchanged) — the path
/// is allocated directly. Only data whose unconstrained path hits a full
/// slot re-solve the masked DP, exactly as the sequential driver does.
pub fn gomcds_schedule_parallel(
    trace: &WindowedTrace,
    spec: MemorySpec,
    solver: Solver,
    cache: &CostCache<'_>,
    pool: pim_par::Pool,
    ws: &mut Workspace,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    ensure_feasible(&grid, spec, nd)?;
    let metrics = ws.metrics.clone();

    let ids: Vec<_> = trace.iter_data().map(|(d, _)| d).collect();
    let paths = {
        let _t = metrics.phase("GOMCDS/phase1-paths");
        pim_par::parallel_map_with_chunked(
            pool,
            &ids,
            pim_par::auto_chunk(ids.len(), pool.threads()),
            Workspace::new,
            |w, _, &d| gomcds_path_cached(&grid, cache.datum(d), solver, w).0,
        )
    };

    let _t = metrics.phase("GOMCDS/phase2-replay");
    let mut masks: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();
    let mut centers = Vec::with_capacity(nd);
    for (d, unconstrained) in ids.into_iter().zip(paths) {
        let free = unconstrained
            .iter()
            .enumerate()
            .all(|(w, &p)| masks[w].has_room(p));
        let path = if free {
            unconstrained
        } else {
            solve_layered(
                &grid,
                &NodeSource::Cached(cache.datum(d)),
                Some(&masks),
                solver,
                ws,
                1,
            )
            .ok_or_else(|| exhausted(d, None))?
            .0
        };
        for (w, &p) in path.iter().enumerate() {
            masks[w].allocate(p).map_err(|_| exhausted(d, Some(w)))?;
        }
        centers.push(path);
    }
    Ok(Schedule::new(grid, centers))
}

fn gomcds_schedule_driver(
    trace: &WindowedTrace,
    spec: MemorySpec,
    solver: Solver,
    ws: &mut Workspace,
    cache: Option<&CostCache>,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    ensure_feasible(&grid, spec, nd)?;

    let bounded = spec.capacity_per_proc != u32::MAX;
    let mut masks: Vec<MemoryMap> = if bounded {
        (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect()
    } else {
        Vec::new()
    };

    let mut centers = Vec::with_capacity(nd);
    for (d, rs) in trace.iter_data() {
        let mask_ref = bounded.then_some(masks.as_slice());
        let (path, _) = match cache {
            Some(c) => solve_layered(
                &grid,
                &NodeSource::Cached(c.datum(d)),
                mask_ref,
                solver,
                ws,
                1,
            ),
            None => solve_layered(&grid, &NodeSource::Raw(rs), mask_ref, solver, ws, 1),
        }
        .ok_or_else(|| exhausted(d, None))?;
        if bounded {
            for (w, &p) in path.iter().enumerate() {
                masks[w].allocate(p).map_err(|_| exhausted(d, Some(w)))?;
            }
        }
        centers.push(path);
    }
    Ok(Schedule::new(grid, centers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lomcds::lomcds_schedule;
    use crate::scds::scds_schedule;
    use pim_trace::ids::DataId;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn stays_put_when_movement_too_expensive() {
        let grid = g();
        // A brief, light excursion of references: moving out and back would
        // cost more than serving remotely.
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 5)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 0), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 5)]),
            ]],
        );
        let s = gomcds_schedule(&trace, MemorySpec::unbounded());
        let cs = s.centers_of(DataId(0));
        assert_eq!(cs, &[grid.proc_xy(0, 0); 3]);
        assert_eq!(s.evaluate(&trace).total(), 3);
    }

    #[test]
    fn moves_when_references_shift_for_good() {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 3), 10)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 3), 10)]),
            ]],
        );
        let s = gomcds_schedule(&trace, MemorySpec::unbounded());
        let cs = s.centers_of(DataId(0));
        assert_eq!(cs[0], grid.proc_xy(0, 0));
        assert_eq!(cs[1], grid.proc_xy(3, 3));
        assert_eq!(cs[2], grid.proc_xy(3, 3));
        // move cost 6, ref cost 0
        assert_eq!(s.evaluate(&trace).total(), 6);
    }

    #[test]
    fn naive_and_dt_agree_exactly() {
        let grid = Grid::new(5, 4);
        let trace = WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(4, 3), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 3)]),
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(4, 0), 1), (grid.proc_xy(0, 3), 1)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(1, 1), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 2), 2)]),
                    WindowRefs::from_pairs([(grid.proc_xy(1, 3), 4)]),
                    WindowRefs::new(),
                ],
            ],
        );
        for spec in [MemorySpec::unbounded(), MemorySpec::uniform(1)] {
            let a = gomcds_schedule_with(&trace, spec, Solver::Naive);
            let b = gomcds_schedule_with(&trace, spec, Solver::DistanceTransform);
            assert_eq!(a, b, "spec {spec:?}");
        }
    }

    #[test]
    fn cached_matches_uncached() {
        let grid = Grid::new(5, 4);
        let trace = WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(4, 3), 1)]),
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 3)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(1, 1), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 2), 2)]),
                    WindowRefs::from_pairs([(grid.proc_xy(1, 3), 4)]),
                ],
            ],
        );
        for spec in [MemorySpec::unbounded(), MemorySpec::uniform(1)] {
            for solver in [Solver::Naive, Solver::DistanceTransform] {
                assert_eq!(
                    gomcds_schedule_with(&trace, spec, solver),
                    gomcds_schedule_with_uncached(&trace, spec, solver).unwrap(),
                    "spec {spec:?} solver {solver:?}"
                );
            }
        }
    }

    #[test]
    fn path_ranges_matches_regrouped_path() {
        let grid = g();
        let rs = DataRefString::new(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2)]),
            WindowRefs::from_pairs([(grid.proc_xy(1, 0), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 6)]),
            WindowRefs::new(),
        ]);
        let groups = vec![0..2, 2..4];
        let cache = DatumCostCache::build(&grid, &rs);
        let mut ws = Workspace::new();
        let via_ranges = gomcds_path_ranges(&grid, &cache, &groups, &mut ws);
        let via_regroup = gomcds_path(&grid, &rs.regrouped(&groups), Solver::DistanceTransform);
        assert_eq!(via_ranges, via_regroup);
    }

    #[test]
    fn never_beaten_by_scds_or_lomcds_unconstrained() {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::from_pairs([(grid.proc_xy(1, 0), 2), (grid.proc_xy(2, 1), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(1, 3), 3)]),
                WindowRefs::from_pairs([(grid.proc_xy(1, 0), 2)]),
                WindowRefs::from_pairs([(grid.proc_xy(2, 1), 2)]),
            ]],
        );
        let unb = MemorySpec::unbounded();
        let go = gomcds_schedule(&trace, unb).evaluate(&trace).total();
        let lo = lomcds_schedule(&trace, unb).evaluate(&trace).total();
        let sc = scds_schedule(&trace, unb).evaluate(&trace).total();
        assert!(go <= lo, "GOMCDS {go} must be ≤ LOMCDS {lo}");
        assert!(go <= sc, "GOMCDS {go} must be ≤ SCDS {sc}");
    }

    #[test]
    fn path_cost_matches_schedule_evaluation() {
        let grid = g();
        let rs_windows = vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(3, 3), 2)]),
        ];
        let trace = WindowedTrace::from_parts(grid, vec![rs_windows]);
        let (path, cost) = gomcds_path(&grid, trace.refs(DataId(0)), Solver::DistanceTransform);
        let s = Schedule::new(grid, vec![path]);
        assert_eq!(s.evaluate(&trace).total(), cost);
    }

    #[test]
    fn capacity_masking_respected() {
        let grid = g();
        let want = |p| {
            vec![
                WindowRefs::from_pairs([(p, 3)]),
                WindowRefs::from_pairs([(p, 3)]),
            ]
        };
        let trace = WindowedTrace::from_parts(
            grid,
            vec![want(grid.proc_xy(2, 2)), want(grid.proc_xy(2, 2))],
        );
        let s = gomcds_schedule(&trace, MemorySpec::uniform(1));
        assert_eq!(s.max_occupancy(), 1);
        assert_eq!(s.center(DataId(0), 0), grid.proc_xy(2, 2));
        assert_ne!(s.center(DataId(1), 0), grid.proc_xy(2, 2));
    }

    #[test]
    fn resumable_solve_matches_cached_from_every_layer() {
        let grid = Grid::new(5, 4);
        let rs = DataRefString::new(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(4, 3), 1)]),
            WindowRefs::new(),
            WindowRefs::from_pairs([(grid.proc_xy(2, 2), 3)]),
            WindowRefs::from_pairs([(grid.proc_xy(4, 0), 1), (grid.proc_xy(0, 3), 1)]),
            WindowRefs::from_pairs([(grid.proc_xy(1, 3), 4)]),
        ]);
        let cache = DatumCostCache::build(&grid, &rs);
        let mut ws = Workspace::new();
        let expect = gomcds_path_cached(&grid, &cache, Solver::DistanceTransform, &mut ws);

        // Save a full checkpoint, then resume from every truncation point
        // (0 = cold, nw = fully warm): all must be bit-identical.
        let mut ckpt = DpCheckpoint::default();
        let saved = gomcds_path_resumable(&grid, &cache, &mut ws, None, Some(&mut ckpt));
        assert_eq!(saved, expect);
        assert_eq!(ckpt.layers, rs.num_windows());
        let m = grid.num_procs();
        for cut in 0..=rs.num_windows() {
            let mut c = ckpt.clone();
            c.truncate(cut, m);
            assert_eq!(c.layers, cut);
            let got = gomcds_path_resumable(&grid, &cache, &mut ws, Some(&c), None);
            assert_eq!(got, expect, "resume from layer {cut}");
        }
    }

    #[test]
    fn single_window_gomcds_equals_scds_placement() {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![WindowRefs::from_pairs([
                (grid.proc_xy(3, 1), 2),
                (grid.proc_xy(0, 2), 1),
            ])]],
        );
        let unb = MemorySpec::unbounded();
        assert_eq!(gomcds_schedule(&trace, unb), scds_schedule(&trace, unb));
    }
}
