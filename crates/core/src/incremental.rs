//! Incremental rescheduling under trace churn.
//!
//! [`IncrementalRun`] keeps a live schedule over an [`EditableTrace`] and,
//! after each batch of edits, re-solves **only the dirty data** instead of
//! rerunning the whole scheduler. The engine maintains three invariants
//! (argued in DESIGN.md §12, pinned by the churn property tests):
//!
//! 1. **Per-method carried state** whose entries depend only on a single
//!    datum's reference span — SCDS merged medians (with optional
//!    [`MedianState`] checkpoints for O(edit)-time median updates), LOMCDS
//!    window-0 anchors, GOMCDS unconstrained paths (with bounded-size
//!    `DpCheckpoint`s so append-heavy churn resumes the layered DP from
//!    the first edited window).
//! 2. **Append extension**: an appended window with no references for a
//!    datum extends its optimal schedule by repeating the last center, so
//!    clean rows, pure paths and per-window occupancy all extend in place.
//! 3. **The occupancy patch rule** for bounded policies: per-datum prefix
//!    occupancy in the sequential capacity replay is monotone, so *"every
//!    placement lands on its unconstrained desired processor"* is
//!    equivalent to *"final occupancy respects the capacity everywhere"*.
//!    When no datum spilled in the last full replay, swapping the dirty
//!    data's old rows for their new unconstrained rows and checking the
//!    touched occupancy cells is exactly what the full replay would
//!    produce. Any violation (or a pre-existing spill) falls back to a
//!    full capacity replay from the carried phase-1 state — counted in
//!    [`IncrementalRun::fallbacks`] and reported through
//!    [`pim_metrics::IncrementalReport`].
//!
//! The result is bit-identical to running the matching flat scheduler
//! ([`flat_scds`](crate::flat::flat_scds) /
//! [`flat_lomcds`](crate::flat::flat_lomcds) /
//! [`flat_gomcds`](crate::flat::flat_gomcds)) on the materialized trace
//! after every delta.

use crate::cache::CostCache;
use crate::capacity::ProcessorList;
use crate::error::{ensure_feasible, exhausted, SchedError};
use crate::flat::span_full_table;
use crate::gomcds::{
    gomcds_path_cached, gomcds_path_resumable, solve_masked_path_cached, DpCheckpoint, Solver,
};
use crate::lomcds::lomcds_assign_observed;
use crate::median::{MedianState, PackedMedians};
use crate::pipeline::{MemoryPolicy, Method};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_metrics::Metrics;
use pim_par::Pool;
use pim_trace::edit::{DirtyKind, EditOp, EditableTrace, TraceDelta};
use pim_trace::flat::{FlatRef, FlatTrace, FlatTraceError};
use pim_trace::ids::DataId;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Default memory budget for the SCDS per-datum median checkpoints; above
/// it dirty medians are recomputed from their spans instead.
const SCDS_CHECKPOINT_BUDGET: usize = 64 << 20;

/// Dirty-set size up to which GOMCDS re-solves sequentially through the
/// checkpoint store; larger sets fan the from-scratch solves out over the
/// pool instead (checkpoints stop paying once every worker is busy).
const GOMCDS_RESUME_SEQUENTIAL_MAX: usize = 32;

/// Maximum number of per-datum DP checkpoints kept (FIFO eviction): each
/// holds two `num_windows × num_procs` u64 tables, so an unbounded store
/// would dwarf the trace itself under wide churn.
const GOMCDS_RESUME_CAP: usize = 256;

/// Dirty-set size from which LOMCDS recomputes desired rows in parallel.
const LOMCDS_PARALLEL_DIRTY_MIN: usize = 64;

/// Why an [`IncrementalRun::incremental`] step failed.
#[derive(Debug)]
pub enum IncrementalError {
    /// The delta failed validation against the current trace shape;
    /// nothing was applied and the engine is unchanged.
    Trace(FlatTraceError),
    /// Rescheduling failed (capacity exhausted under the policy). The
    /// engine state is unspecified afterwards; drop it.
    Sched(SchedError),
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrementalError::Trace(e) => write!(f, "trace edit rejected: {e}"),
            IncrementalError::Sched(e) => write!(f, "incremental re-solve failed: {e}"),
        }
    }
}

impl std::error::Error for IncrementalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IncrementalError::Trace(e) => Some(e),
            IncrementalError::Sched(e) => Some(e),
        }
    }
}

impl From<FlatTraceError> for IncrementalError {
    fn from(e: FlatTraceError) -> Self {
        IncrementalError::Trace(e)
    }
}

impl From<SchedError> for IncrementalError {
    fn from(e: SchedError) -> Self {
        IncrementalError::Sched(e)
    }
}

/// FIFO-bounded store of per-datum GOMCDS DP checkpoints.
#[derive(Debug, Default)]
struct ResumeStore {
    map: HashMap<u32, DpCheckpoint>,
    fifo: VecDeque<u32>,
}

impl ResumeStore {
    fn get(&self, d: DataId) -> Option<&DpCheckpoint> {
        self.map.get(&d.0)
    }

    /// Drop every checkpointed layer from `first_dirty` on for `d`.
    fn truncate(&mut self, d: DataId, first_dirty: usize, m: usize) {
        if let Some(c) = self.map.get_mut(&d.0) {
            c.truncate(first_dirty, m);
        }
    }

    fn save(&mut self, d: DataId, ckpt: DpCheckpoint) {
        if self.map.insert(d.0, ckpt).is_none() {
            self.fifo.push_back(d.0);
            if self.fifo.len() > GOMCDS_RESUME_CAP {
                if let Some(old) = self.fifo.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

/// Per-method carried phase-1 state: everything here depends only on
/// individual data spans, so an edit to datum `d` invalidates exactly the
/// entries of `d`.
enum MethodState {
    /// SCDS: each datum's merged-window weighted median, plus (when the
    /// budget allows) its live median histogram so an edit updates the
    /// median in `O(edit + width + height)` instead of `O(span)`.
    Scds {
        medians: Vec<ProcId>,
        ckpts: Option<PackedMedians>,
    },
    /// LOMCDS: each datum's window-0 anchor (the median of its first
    /// referenced window) — all the sequential replay ever consults
    /// besides the caches.
    Lomcds { anchors: Vec<ProcId> },
    /// GOMCDS: each datum's unconstrained layered-DP path, plus resumable
    /// DP checkpoints for recently re-solved data.
    Gomcds {
        pure: Vec<Vec<ProcId>>,
        resume: ResumeStore,
    },
}

impl MethodState {
    fn init(method: Method) -> MethodState {
        match method {
            Method::Scds => MethodState::Scds {
                medians: Vec::new(),
                ckpts: None,
            },
            Method::Lomcds => MethodState::Lomcds {
                anchors: Vec::new(),
            },
            _ => MethodState::Gomcds {
                pure: Vec::new(),
                resume: ResumeStore::default(),
            },
        }
    }
}

/// Capacity bookkeeping carried between resolves of a bounded run.
struct BoundedState {
    spec: MemorySpec,
    /// Number of data whose last full replay placed them off their
    /// unconstrained desired processor in some window. Zero is the patch
    /// precondition: with no spills, schedule rows *are* the unconstrained
    /// rows and the final-occupancy check below reproduces the replay.
    spilled: usize,
    /// Final occupancy of the current schedule: `num_procs` entries for
    /// SCDS (static placement), `num_windows × num_procs` window-major
    /// for LOMCDS/GOMCDS.
    occ: Vec<u32>,
}

/// A live schedule over an editable trace with delta re-solving.
///
/// ```
/// use pim_sched::incremental::IncrementalRun;
/// use pim_sched::{MemoryPolicy, Method};
/// use pim_trace::edit::TraceDelta;
/// use pim_trace::flat::{FlatRecord, FlatTrace};
/// use pim_trace::ids::DataId;
/// use pim_array::grid::Grid;
///
/// let grid = Grid::new(4, 4);
/// let flat = FlatTrace::from_records(
///     grid,
///     2,
///     1,
///     [FlatRecord { datum: DataId(0), window: 0, proc: grid.proc_xy(1, 1), count: 3 }],
/// )
/// .unwrap();
/// let mut run = IncrementalRun::new(
///     flat,
///     Method::Lomcds,
///     MemoryPolicy::Unbounded,
///     pim_par::Pool::serial(),
/// )
/// .unwrap();
/// assert_eq!(run.schedule().center(DataId(0), 0), grid.proc_xy(1, 1));
///
/// let mut delta = TraceDelta::new();
/// delta.set_run(DataId(0), 1, [(grid.proc_xy(3, 0), 5)]);
/// run.incremental(&delta).unwrap();
/// assert_eq!(run.schedule().center(DataId(0), 1), grid.proc_xy(3, 0));
/// ```
pub struct IncrementalRun {
    grid: Grid,
    method: Method,
    policy: MemoryPolicy,
    pool: Pool,
    metrics: Metrics,
    trace: EditableTrace,
    cache: CostCache<'static>,
    ws: Workspace,
    schedule: Schedule,
    state: MethodState,
    bounded: Option<BoundedState>,
    fallbacks: u64,
    scds_ckpt_budget: usize,
    /// Centers computed in [`Self::post_op`] while the just-updated SCDS
    /// checkpoint is still cache-hot, in op order (sequential pushes — a
    /// per-datum array would pay a cold write per op). The dirty-solve
    /// consumes the list only when its length equals the dirty count,
    /// which proves entries are unique and cover the dirty set; duplicate
    /// edits to one datum fall back to re-reading checkpoints. Always
    /// empty unless the method is SCDS with checkpoints.
    fresh: Vec<(DataId, ProcId)>,
}

impl fmt::Debug for IncrementalRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IncrementalRun")
            .field("method", &self.method)
            .field("policy", &self.policy)
            .field("version", &self.trace.version())
            .field("fallbacks", &self.fallbacks)
            .finish_non_exhaustive()
    }
}

impl IncrementalRun {
    /// Build the engine and solve the initial schedule (bit-identical to
    /// the matching flat scheduler). Only SCDS, LOMCDS and GOMCDS have
    /// incremental engines; other methods return
    /// [`SchedError::UnknownScheduler`].
    pub fn new(
        flat: FlatTrace,
        method: Method,
        policy: MemoryPolicy,
        pool: Pool,
    ) -> Result<IncrementalRun, SchedError> {
        IncrementalRun::with_metrics(flat, method, policy, pool, Metrics::disabled())
    }

    /// [`IncrementalRun::new`] with cache/phase/incremental
    /// instrumentation recorded into `metrics`.
    pub fn with_metrics(
        flat: FlatTrace,
        method: Method,
        policy: MemoryPolicy,
        pool: Pool,
        metrics: Metrics,
    ) -> Result<IncrementalRun, SchedError> {
        match method {
            Method::Scds | Method::Lomcds | Method::Gomcds => {}
            other => {
                return Err(SchedError::UnknownScheduler(format!(
                    "{other} has no incremental engine (supported: SCDS, LOMCDS, GOMCDS)"
                )))
            }
        }
        let grid = flat.grid();
        let trace = EditableTrace::new(flat);
        let mut cache = CostCache::build_shared(trace.base());
        if let Some(stats) = metrics.cache_stats() {
            cache.set_stats(&stats);
        }
        let mut ws = Workspace::new();
        ws.metrics = metrics.clone();
        let mut run = IncrementalRun {
            grid,
            method,
            policy,
            pool,
            metrics,
            trace,
            cache,
            ws,
            schedule: Schedule::new(grid, Vec::new()),
            state: MethodState::init(method),
            bounded: None,
            fallbacks: 0,
            scds_ckpt_budget: SCDS_CHECKPOINT_BUDGET,
            fresh: Vec::new(),
        };
        run.full_solve()?;
        Ok(run)
    }

    /// The current schedule (always consistent with the last resolved
    /// trace version).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The live trace the schedule covers.
    pub fn trace(&self) -> &EditableTrace {
        &self.trace
    }

    /// The trace edit version the schedule corresponds to.
    pub fn version(&self) -> u64 {
        self.trace.version()
    }

    /// How many resolves fell back to a full capacity replay.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// The scheduling method this engine drives.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The memory policy in effect.
    pub fn policy(&self) -> MemoryPolicy {
        self.policy
    }

    /// Apply a delta and re-solve the dirty data: the incremental
    /// counterpart of rerunning the scheduler on the edited trace.
    pub fn incremental(&mut self, delta: &TraceDelta) -> Result<(), IncrementalError> {
        self.apply(delta)?;
        self.resolve()?;
        Ok(())
    }

    /// Validate and apply a delta without re-solving (several deltas can
    /// be batched before one [`Self::resolve`]). On `Err` nothing was
    /// applied.
    pub fn apply(&mut self, delta: &TraceDelta) -> Result<(), FlatTraceError> {
        self.trace.check(delta)?;
        let ops = delta.ops();
        for (i, op) in ops.iter().enumerate() {
            // One-op lookahead: start pulling the next op's span and
            // checkpoint block toward cache so their DRAM latency
            // overlaps this op's work (spans land on random data, so
            // every tick begins cold).
            if let Some(EditOp::SetRun { datum, .. }) = ops.get(i + 1) {
                self.trace.prefetch_span(*datum);
                if let MethodState::Scds {
                    ckpts: Some(pm), ..
                } = &self.state
                {
                    pm.prefetch(datum.index());
                }
            }
            self.pre_op(op);
            self.trace
                .apply_op(op)
                .expect("delta pre-validated by check");
            self.post_op(op);
        }
        Ok(())
    }

    /// Switch the memory policy, flushing pending edits under the old
    /// policy first, then replaying capacity from the carried state.
    pub fn set_policy(&mut self, policy: MemoryPolicy) -> Result<(), SchedError> {
        self.resolve()?;
        self.policy = policy;
        self.replay()
    }

    /// Eager carried-state maintenance *before* an op lands: SCDS median
    /// checkpoints must see the run being replaced while it is still in
    /// the trace.
    fn pre_op(&mut self, op: &EditOp) {
        if let (
            MethodState::Scds {
                ckpts: Some(ckpts), ..
            },
            EditOp::SetRun { datum, window, .. },
        ) = (&mut self.state, op)
        {
            for r in self.trace.window_run(*datum, *window as usize) {
                ckpts.remove(datum.index(), r.x, r.y, r.count as u64);
            }
        }
    }

    /// Carried-state maintenance *after* an op lands. Reads the stored
    /// runs back from the trace (not the raw delta refs) so checkpoint
    /// histograms stay exact under run aggregation.
    fn post_op(&mut self, op: &EditOp) {
        match (&mut self.state, op) {
            (
                MethodState::Scds {
                    ckpts: Some(ckpts), ..
                },
                EditOp::SetRun { datum, window, .. },
            ) => {
                for r in self.trace.window_run(*datum, *window as usize) {
                    ckpts.add(datum.index(), r.x, r.y, r.count as u64);
                }
                // The checkpoint's histogram lines are L1-hot right here;
                // computing the new center now saves the dirty-solve a
                // cold re-read of this datum's checkpoint.
                self.fresh
                    .push((*datum, ckpts.center(datum.index(), &self.grid)));
            }
            (
                MethodState::Scds {
                    ckpts: Some(ckpts), ..
                },
                EditOp::AppendWindow { rows },
            ) => {
                let w = self.trace.num_windows() - 1;
                let mut touched: Vec<DataId> = rows.iter().map(|&(d, _, _)| d).collect();
                touched.sort_unstable_by_key(|d| d.0);
                touched.dedup();
                for d in touched {
                    for r in self.trace.window_run(d, w) {
                        ckpts.add(d.index(), r.x, r.y, r.count as u64);
                    }
                    self.fresh.push((d, ckpts.center(d.index(), &self.grid)));
                }
            }
            (MethodState::Gomcds { resume, .. }, EditOp::SetRun { datum, window, .. }) => {
                resume.truncate(*datum, *window as usize, self.grid.num_procs());
            }
            _ => {}
        }
    }

    /// Re-solve everything the applied-but-unresolved edits dirtied.
    /// No-op (beyond a metrics tick) when nothing is dirty.
    pub fn resolve(&mut self) -> Result<(), SchedError> {
        let dirty = self.trace.take_dirty();
        if dirty.is_empty() {
            self.metrics.record_incremental(0, false);
            return Ok(());
        }
        let metrics = self.metrics.clone();
        let grid = self.grid;
        let nd = self.trace.num_data();
        let nw = self.trace.num_windows();
        let m = grid.num_procs();

        // Cache + carried-state maintenance: rebind/extend the dirty
        // data's tables, extend everything else in place across appended
        // windows (appended windows hold no refs for clean data, so their
        // schedules, pure paths and occupancy rows all repeat-last).
        {
            let _t = metrics.phase("incremental/maintain");
            // SCDS never consults the cost cache — its dirty-solve runs on
            // checkpoints (or raw spans) and its replay on span_full_table
            // — so maintaining per-datum cache units would be pure
            // overhead on the churn hot path.
            let cache_live = !matches!(self.method, Method::Scds);
            if cache_live {
                for &(d, kind) in &dirty.data {
                    let span = self.trace.shared_span(d);
                    match kind {
                        DirtyKind::Rewritten => self.cache.datum_mut(d).rebind_span(span, nw),
                        DirtyKind::Appended => self.cache.datum_mut(d).extend_span(span, nw),
                    }
                }
            }
            if dirty.appended_windows > 0 {
                if cache_live {
                    let mut touched = vec![false; nd];
                    for &(d, _) in &dirty.data {
                        touched[d.index()] = true;
                    }
                    for (i, &t) in touched.iter().enumerate() {
                        if !t {
                            self.cache.datum_mut(DataId(i as u32)).extend_windows(nw);
                        }
                    }
                }
                for _ in 0..dirty.appended_windows {
                    self.schedule.append_window_repeat_last();
                }
                if let MethodState::Gomcds { pure, .. } = &mut self.state {
                    for row in pure.iter_mut() {
                        let last = *row.last().expect("paths have ≥1 window");
                        row.resize(nw, last);
                    }
                }
                if let Some(b) = &mut self.bounded {
                    if !matches!(self.method, Method::Scds) {
                        b.occ.resize(nw * m, 0);
                        for w in dirty.old_num_windows..nw {
                            let (prev, rest) = b.occ.split_at_mut(w * m);
                            rest[..m].copy_from_slice(&prev[(w - 1) * m..]);
                        }
                    }
                }
            }
        }

        // Dirty re-solve + occupancy patch (or fallback).
        let dirty_count = dirty.data.len();
        let mut fallback = false;
        {
            let _t = metrics.phase("incremental/dirty-solve");
            match &mut self.state {
                MethodState::Scds { medians, ckpts } => {
                    let mut fresh = std::mem::take(&mut self.fresh);
                    let mut scratch = MedianState::default();
                    let mut changes: Vec<(DataId, ProcId, ProcId)> =
                        Vec::with_capacity(dirty_count);
                    if ckpts.is_some() && fresh.len() == dirty_count {
                        // One list entry per dirty datum ⇒ unique and
                        // covering: the post_op pre-computed centers stand
                        // in for cold checkpoint re-reads.
                        for &(d, new) in &fresh {
                            let old = medians[d.index()];
                            medians[d.index()] = new;
                            changes.push((d, old, new));
                        }
                    } else {
                        for &(d, _) in &dirty.data {
                            let new = match ckpts {
                                Some(c) => c.center(d.index(), &grid),
                                None => span_median(&grid, self.trace.span(d), &mut scratch),
                            };
                            let old = medians[d.index()];
                            medians[d.index()] = new;
                            changes.push((d, old, new));
                        }
                    }
                    fresh.clear();
                    self.fresh = fresh;
                    match &mut self.bounded {
                        None => {
                            for &(d, old, new) in &changes {
                                if new != old {
                                    self.schedule.fill_row(d, new);
                                }
                            }
                        }
                        Some(b) if b.spilled > 0 => fallback = true,
                        Some(b) => {
                            // No spills ⇒ every current placement is its
                            // median; swap dirty old medians for new ones
                            // and check the incremented cells.
                            let cap = b.spec.capacity_per_proc;
                            for &(_, old, _) in &changes {
                                b.occ[old.index()] -= 1;
                            }
                            let mut ok = true;
                            for &(_, _, new) in &changes {
                                b.occ[new.index()] += 1;
                                ok &= b.occ[new.index()] <= cap;
                            }
                            if ok {
                                for &(d, old, new) in &changes {
                                    if new != old {
                                        self.schedule.fill_row(d, new);
                                    }
                                }
                            } else {
                                fallback = true;
                            }
                        }
                    }
                }
                MethodState::Lomcds { anchors } => {
                    let dirty_ids: Vec<DataId> = dirty.data.iter().map(|&(d, _)| d).collect();
                    let trace = &self.trace;
                    let rows: Vec<Vec<ProcId>> = if dirty_count >= LOMCDS_PARALLEL_DIRTY_MIN {
                        pim_par::parallel_map_with_chunked(
                            self.pool,
                            &dirty_ids,
                            pim_par::auto_chunk(dirty_count, self.pool.threads()),
                            MedianState::default,
                            |med, _, &d| span_lomcds_row(&grid, trace.span(d), nw, med),
                        )
                    } else {
                        let mut med = MedianState::default();
                        dirty_ids
                            .iter()
                            .map(|&d| span_lomcds_row(&grid, trace.span(d), nw, &mut med))
                            .collect()
                    };
                    // Gap resolution backfills leading empties with the
                    // first referenced window's median, so row[0] *is*
                    // the window-0 anchor.
                    for (&d, row) in dirty_ids.iter().zip(&rows) {
                        anchors[d.index()] = row[0];
                    }
                    match &mut self.bounded {
                        None => {
                            for (&d, row) in dirty_ids.iter().zip(rows) {
                                self.schedule.set_row(d, row);
                            }
                        }
                        Some(b) if b.spilled > 0 => fallback = true,
                        Some(b) => {
                            let cap = b.spec.capacity_per_proc;
                            for &d in &dirty_ids {
                                for (w, &p) in self.schedule.centers_of(d).iter().enumerate() {
                                    b.occ[w * m + p.index()] -= 1;
                                }
                            }
                            let mut ok = true;
                            for row in &rows {
                                for (w, &p) in row.iter().enumerate() {
                                    let cell = &mut b.occ[w * m + p.index()];
                                    *cell += 1;
                                    ok &= *cell <= cap;
                                }
                            }
                            if ok {
                                for (&d, row) in dirty_ids.iter().zip(rows) {
                                    self.schedule.set_row(d, row);
                                }
                            } else {
                                fallback = true;
                            }
                        }
                    }
                }
                MethodState::Gomcds { pure, resume } => {
                    let dirty_ids: Vec<DataId> = dirty.data.iter().map(|&(d, _)| d).collect();
                    let rows: Vec<Vec<ProcId>> = if dirty_count > GOMCDS_RESUME_SEQUENTIAL_MAX {
                        let cache = &self.cache;
                        pim_par::parallel_map_with_chunked(
                            self.pool,
                            &dirty_ids,
                            pim_par::auto_chunk(dirty_count, self.pool.threads()),
                            Workspace::new,
                            |ws, _, &d| {
                                gomcds_path_cached(
                                    &grid,
                                    cache.datum(d),
                                    Solver::DistanceTransform,
                                    ws,
                                )
                                .0
                            },
                        )
                    } else {
                        dirty_ids
                            .iter()
                            .map(|&d| {
                                let mut save = DpCheckpoint::default();
                                let (path, _) = gomcds_path_resumable(
                                    &grid,
                                    self.cache.datum(d),
                                    &mut self.ws,
                                    resume.get(d),
                                    Some(&mut save),
                                );
                                resume.save(d, save);
                                path
                            })
                            .collect()
                    };
                    for (&d, row) in dirty_ids.iter().zip(&rows) {
                        pure[d.index()] = row.clone();
                    }
                    match &mut self.bounded {
                        None => {
                            for (&d, row) in dirty_ids.iter().zip(rows) {
                                self.schedule.set_row(d, row);
                            }
                        }
                        Some(b) if b.spilled > 0 => fallback = true,
                        Some(b) => {
                            let cap = b.spec.capacity_per_proc;
                            for &d in &dirty_ids {
                                for (w, &p) in self.schedule.centers_of(d).iter().enumerate() {
                                    b.occ[w * m + p.index()] -= 1;
                                }
                            }
                            let mut ok = true;
                            for row in &rows {
                                for (w, &p) in row.iter().enumerate() {
                                    let cell = &mut b.occ[w * m + p.index()];
                                    *cell += 1;
                                    ok &= *cell <= cap;
                                }
                            }
                            if ok {
                                for (&d, row) in dirty_ids.iter().zip(rows) {
                                    self.schedule.set_row(d, row);
                                }
                            } else {
                                fallback = true;
                            }
                        }
                    }
                }
            }
        }

        if fallback {
            self.fallbacks += 1;
            let _t = metrics.phase("incremental/fallback-replay");
            self.replay()?;
        }
        self.metrics
            .record_incremental(dirty_count as u64, fallback);
        Ok(())
    }

    /// Phase-1 state for every datum in parallel, then the capacity
    /// replay — the from-scratch solve the deltas patch around.
    fn full_solve(&mut self) -> Result<(), SchedError> {
        let metrics = self.metrics.clone();
        let _t = metrics.phase("incremental/initial-solve");
        let grid = self.grid;
        let nd = self.trace.num_data();
        let ids: Vec<DataId> = (0..nd as u32).map(DataId).collect();
        let chunk = pim_par::auto_chunk(nd, self.pool.threads());
        let trace = &self.trace;
        match &mut self.state {
            MethodState::Scds { medians, ckpts } => {
                *medians = pim_par::parallel_map_with_chunked(
                    self.pool,
                    &ids,
                    chunk,
                    MedianState::default,
                    |med, _, &d| span_median(&grid, trace.span(d), med),
                );
                *ckpts = scds_checkpoints_fit(&grid, nd, self.scds_ckpt_budget).then(|| {
                    let mut pool = PackedMedians::new(&grid, nd);
                    for &d in &ids {
                        for r in trace.span(d) {
                            pool.add(d.index(), r.x, r.y, r.count as u64);
                        }
                    }
                    pool
                });
            }
            MethodState::Lomcds { anchors } => {
                *anchors = pim_par::parallel_map_with_chunked(
                    self.pool,
                    &ids,
                    chunk,
                    MedianState::default,
                    |med, _, &d| span_first_anchor(&grid, trace.span(d), med),
                );
            }
            MethodState::Gomcds { pure, .. } => {
                let cache = &self.cache;
                *pure = pim_par::parallel_map_with_chunked(
                    self.pool,
                    &ids,
                    chunk,
                    Workspace::new,
                    |ws, _, &d| {
                        gomcds_path_cached(&grid, cache.datum(d), Solver::DistanceTransform, ws).0
                    },
                );
            }
        }
        self.replay()
    }

    /// Full capacity replay from the carried phase-1 state: rebuilds the
    /// schedule, spill count and occupancy. Exactly what the flat
    /// schedulers' sequential phase does.
    fn replay(&mut self) -> Result<(), SchedError> {
        let grid = self.grid;
        let nd = self.trace.num_data();
        let nw = self.trace.num_windows();
        let m = grid.num_procs();
        let spec = self.policy.resolve_parts(&grid, nd);
        ensure_feasible(&grid, spec, nd)?;
        let unbounded = spec.capacity_per_proc == u32::MAX;
        match &mut self.state {
            MethodState::Scds { medians, .. } => {
                let mut mem = MemoryMap::new(&grid, spec);
                let mut spilled = 0usize;
                let mut placement = Vec::with_capacity(nd);
                for (i, &c) in medians.iter().enumerate() {
                    let d = DataId(i as u32);
                    let p = if mem.has_room(c) {
                        mem.allocate(c).map_err(|_| exhausted(d, None))?;
                        c
                    } else {
                        spilled += 1;
                        span_full_table(
                            &grid,
                            self.trace.span(d),
                            &mut self.ws.axes,
                            &mut self.ws.table,
                        );
                        ProcessorList::from_cost_table(&self.ws.table)
                            .assign(&mut mem)
                            .ok_or_else(|| exhausted(d, None))?
                    };
                    placement.push(p);
                }
                let mut occ = vec![0u32; m];
                for &p in &placement {
                    occ[p.index()] += 1;
                }
                self.schedule = Schedule::static_placement(grid, placement, nw);
                self.bounded = (!unbounded).then_some(BoundedState { spec, spilled, occ });
            }
            MethodState::Lomcds { anchors } => {
                if unbounded {
                    let trace = &self.trace;
                    let ids: Vec<DataId> = (0..nd as u32).map(DataId).collect();
                    let rows = pim_par::parallel_map_with_chunked(
                        self.pool,
                        &ids,
                        pim_par::auto_chunk(nd, self.pool.threads()),
                        MedianState::default,
                        |med, _, &d| span_lomcds_row(&grid, trace.span(d), nw, med),
                    );
                    self.schedule = Schedule::new(grid, rows);
                    self.bounded = None;
                } else {
                    let mut spill_flag = vec![false; nd];
                    let sched = lomcds_assign_observed(
                        grid,
                        nw,
                        spec,
                        &self.cache,
                        &mut self.ws,
                        anchors,
                        &mut |d, _, rank0| {
                            if !rank0 {
                                spill_flag[d.index()] = true;
                            }
                        },
                    )?;
                    let spilled = spill_flag.iter().filter(|&&s| s).count();
                    let occ = occ_rows(&grid, &sched);
                    self.schedule = sched;
                    self.bounded = Some(BoundedState { spec, spilled, occ });
                }
            }
            MethodState::Gomcds { pure, .. } => {
                if unbounded {
                    self.schedule = Schedule::new(grid, pure.clone());
                    self.bounded = None;
                } else {
                    let mut masks: Vec<MemoryMap> =
                        (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();
                    let mut spilled = 0usize;
                    let mut centers = Vec::with_capacity(nd);
                    for (i, unconstrained) in pure.iter().enumerate() {
                        let d = DataId(i as u32);
                        let free = unconstrained
                            .iter()
                            .enumerate()
                            .all(|(w, &p)| masks[w].has_room(p));
                        let path = if free {
                            unconstrained.clone()
                        } else {
                            spilled += 1;
                            solve_masked_path_cached(
                                &grid,
                                self.cache.datum(d),
                                &masks,
                                &mut self.ws,
                            )
                            .ok_or_else(|| exhausted(d, None))?
                        };
                        for (w, &p) in path.iter().enumerate() {
                            masks[w].allocate(p).map_err(|_| exhausted(d, Some(w)))?;
                        }
                        centers.push(path);
                    }
                    let sched = Schedule::new(grid, centers);
                    let occ = occ_rows(&grid, &sched);
                    self.schedule = sched;
                    self.bounded = Some(BoundedState { spec, spilled, occ });
                }
            }
        }
        Ok(())
    }
}

/// Merged-window weighted median of one flat span (the SCDS center).
fn span_median(grid: &Grid, span: &[FlatRef], med: &mut MedianState) -> ProcId {
    med.reset(grid);
    for r in span {
        med.add(r.x, r.y, r.count as u64);
    }
    med.center(grid)
}

/// The LOMCDS window-0 anchor of one flat span: the median of its first
/// referenced window, `P0` when never referenced.
fn span_first_anchor(grid: &Grid, span: &[FlatRef], med: &mut MedianState) -> ProcId {
    match span.chunk_by(|a, b| a.window == b.window).next() {
        Some(run) => {
            med.reset(grid);
            for r in run {
                med.add(r.x, r.y, r.count as u64);
            }
            med.center(grid)
        }
        None => ProcId(0),
    }
}

/// The unconstrained LOMCDS center row of one flat span: per-window
/// incremental medians with carry-forward / backfill gap resolution —
/// the same sequence `flat_lomcds` computes per datum.
fn span_lomcds_row(grid: &Grid, span: &[FlatRef], nw: usize, med: &mut MedianState) -> Vec<ProcId> {
    let mut centers: Vec<Option<ProcId>> = vec![None; nw];
    med.reset(grid);
    for run in span.chunk_by(|a, b| a.window == b.window) {
        for r in run {
            med.add(r.x, r.y, r.count as u64);
        }
        centers[run[0].window as usize] = Some(med.center(grid));
        for r in run {
            med.remove(r.x, r.y, r.count as u64);
        }
    }
    crate::lomcds::resolve_gaps_pub(&mut centers);
    centers
        .into_iter()
        .map(|c| c.unwrap_or(ProcId(0)))
        .collect()
}

/// Window-major final occupancy of a schedule.
fn occ_rows(grid: &Grid, sched: &Schedule) -> Vec<u32> {
    let m = grid.num_procs();
    let mut occ = vec![0u32; sched.num_windows() * m];
    for i in 0..sched.num_data() {
        for (w, &p) in sched.centers_of(DataId(i as u32)).iter().enumerate() {
            occ[w * m + p.index()] += 1;
        }
    }
    occ
}

/// Whether per-datum SCDS median checkpoints fit the byte budget (one
/// packed histogram block per datum).
fn scds_checkpoints_fit(grid: &Grid, nd: usize, budget: usize) -> bool {
    nd.saturating_mul(PackedMedians::block_bytes(grid)) <= budget
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{flat_gomcds, flat_lomcds, flat_scds};
    use pim_trace::flat::FlatRecord;

    fn grid() -> Grid {
        Grid::new(4, 3)
    }

    /// `(datum, window, x, y, count)` quintuples to a flat trace.
    fn flat_of(grid: Grid, nd: usize, nw: usize, recs: &[(u32, u32, u32, u32, u32)]) -> FlatTrace {
        FlatTrace::from_records(
            grid,
            nw,
            nd,
            recs.iter().map(|&(d, w, x, y, c)| FlatRecord {
                datum: DataId(d),
                window: w,
                proc: grid.proc_xy(x, y),
                count: c,
            }),
        )
        .unwrap()
    }

    fn sample(grid: Grid) -> FlatTrace {
        flat_of(
            grid,
            3,
            4,
            &[
                (0, 0, 0, 0, 2),
                (0, 0, 1, 0, 1),
                (0, 1, 3, 2, 4),
                (0, 3, 3, 1, 2),
                (1, 0, 2, 2, 1),
                (1, 2, 2, 2, 3),
                (2, 1, 1, 1, 5),
            ],
        )
    }

    const METHODS: [Method; 3] = [Method::Scds, Method::Lomcds, Method::Gomcds];
    const POLICIES: [MemoryPolicy; 3] = [
        MemoryPolicy::Unbounded,
        MemoryPolicy::ScaledMinimum { factor: 2 },
        MemoryPolicy::Capacity(1),
    ];

    /// From-scratch schedule of the engine's current trace.
    fn scratch(run: &IncrementalRun) -> Schedule {
        let flat = run.trace().materialize();
        match run.method() {
            Method::Scds => flat_scds(&flat, run.policy(), Pool::serial()),
            Method::Lomcds => flat_lomcds(&flat, run.policy(), Pool::serial()),
            _ => flat_gomcds(&flat, run.policy(), Pool::serial()),
        }
        .unwrap()
    }

    fn assert_parity(run: &IncrementalRun, what: &str) {
        assert_eq!(
            run.schedule(),
            &scratch(run),
            "{what}: {} {:?}",
            run.method(),
            run.policy()
        );
    }

    #[test]
    fn rejects_unsupported_methods() {
        let err = IncrementalRun::new(
            sample(grid()),
            Method::GomcdsNaive,
            MemoryPolicy::Unbounded,
            Pool::serial(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::UnknownScheduler(_)), "{err}");
    }

    #[test]
    fn initial_solve_matches_flat_schedulers() {
        for method in METHODS {
            for policy in POLICIES {
                let run =
                    IncrementalRun::new(sample(grid()), method, policy, Pool::serial()).unwrap();
                assert_parity(&run, "initial");
            }
        }
    }

    #[test]
    fn edit_sequence_tracks_scratch() {
        let g = grid();
        for method in METHODS {
            for policy in POLICIES {
                let mut run =
                    IncrementalRun::new(sample(g), method, policy, Pool::serial()).unwrap();

                let mut d1 = TraceDelta::new();
                d1.set_run(DataId(0), 1, [(g.proc_xy(0, 2), 7)]);
                run.incremental(&d1).unwrap();
                assert_parity(&run, "rewrite");

                let mut d2 = TraceDelta::new();
                d2.remove_run(DataId(2), 1).set_run(
                    DataId(1),
                    3,
                    [(g.proc_xy(3, 0), 2), (g.proc_xy(3, 1), 2)],
                );
                run.incremental(&d2).unwrap();
                assert_parity(&run, "remove+rewrite");

                let mut d3 = TraceDelta::new();
                d3.append_window([(DataId(1), g.proc_xy(0, 0), 4)])
                    .append_window([]);
                run.incremental(&d3).unwrap();
                assert_parity(&run, "append");
                assert_eq!(run.trace().num_windows(), 6);
            }
        }
    }

    #[test]
    fn noop_delta_invalidates_nothing() {
        let metrics = Metrics::enabled();
        let mut run = IncrementalRun::with_metrics(
            sample(grid()),
            Method::Gomcds,
            MemoryPolicy::Capacity(2),
            Pool::serial(),
            metrics.clone(),
        )
        .unwrap();
        let v = run.version();
        run.incremental(&TraceDelta::new()).unwrap();
        assert_eq!(run.version(), v, "no-op delta must not bump the version");
        let report = metrics.report();
        assert_eq!(report.cache.invalidations, 0);
        assert_eq!(report.incremental.resolves, 1);
        assert_eq!(report.incremental.dirty_data, 0);
        assert_eq!(report.incremental.fallbacks, 0);
    }

    #[test]
    fn displacement_falls_back_and_stays_exact() {
        // 2×2 grid at capacity 1 with 4 data: every processor is full, so
        // moving datum 0 onto datum 3's processor must displace and the
        // patch cannot apply.
        let g = Grid::new(2, 2);
        let flat = flat_of(
            g,
            4,
            2,
            &[
                (0, 0, 0, 0, 3),
                (1, 0, 1, 0, 3),
                (2, 0, 0, 1, 3),
                (3, 0, 1, 1, 3),
            ],
        );
        for method in METHODS {
            let mut run = IncrementalRun::new(
                flat.clone(),
                method,
                MemoryPolicy::Capacity(1),
                Pool::serial(),
            )
            .unwrap();
            assert_parity(&run, "initial");
            let mut delta = TraceDelta::new();
            delta.set_run(DataId(0), 0, [(g.proc_xy(1, 1), 9)]);
            run.incremental(&delta).unwrap();
            assert_parity(&run, "displacing edit");
            assert!(run.fallbacks() >= 1, "{method}: expected a fallback");
        }
    }

    #[test]
    fn scds_without_checkpoints_matches() {
        let g = grid();
        let mut run = IncrementalRun::new(
            sample(g),
            Method::Scds,
            MemoryPolicy::Capacity(2),
            Pool::serial(),
        )
        .unwrap();
        run.scds_ckpt_budget = 0;
        run.full_solve().unwrap();
        assert!(matches!(run.state, MethodState::Scds { ckpts: None, .. }));
        let mut delta = TraceDelta::new();
        delta.set_run(DataId(0), 0, [(g.proc_xy(3, 2), 6)]);
        run.incremental(&delta).unwrap();
        assert_parity(&run, "no-checkpoint edit");
    }

    #[test]
    fn set_policy_replays_under_new_spec() {
        let g = grid();
        for method in METHODS {
            let mut run =
                IncrementalRun::new(sample(g), method, MemoryPolicy::Unbounded, Pool::serial())
                    .unwrap();
            let mut delta = TraceDelta::new();
            delta.set_run(DataId(1), 0, [(g.proc_xy(0, 2), 2)]);
            run.apply(&delta).unwrap();
            run.set_policy(MemoryPolicy::Capacity(1)).unwrap();
            assert_parity(&run, "policy switch");
        }
    }

    #[test]
    fn batched_deltas_resolve_once() {
        let g = grid();
        let metrics = Metrics::enabled();
        let mut run = IncrementalRun::with_metrics(
            sample(g),
            Method::Lomcds,
            MemoryPolicy::Unbounded,
            Pool::serial(),
            metrics.clone(),
        )
        .unwrap();
        let mut d1 = TraceDelta::new();
        d1.set_run(DataId(0), 2, [(g.proc_xy(2, 1), 1)]);
        let mut d2 = TraceDelta::new();
        d2.set_run(DataId(2), 0, [(g.proc_xy(1, 2), 8)]);
        run.apply(&d1).unwrap();
        run.apply(&d2).unwrap();
        run.resolve().unwrap();
        assert_parity(&run, "batched");
        let report = metrics.report();
        assert_eq!(report.incremental.resolves, 1);
        assert_eq!(report.incremental.dirty_data, 2);
    }
}
