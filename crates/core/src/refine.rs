//! Local-search schedule refinement.
//!
//! A generic post-pass usable on *any* schedule: repeatedly move one
//! datum's center in one window to a better processor (considering both
//! reference and adjacent-movement cost) until no single move helps. This
//! is the obvious practical alternative to GOMCDS's exact DP, so it serves
//! two purposes:
//!
//! * as a **certification witness** — hill-climbing started from a GOMCDS
//!   schedule can never improve it (tested), corroborating optimality;
//! * as an **upgrade path for the cheap schedulers** — refined SCDS closes
//!   part of the gap to GOMCDS at a fraction of the conceptual machinery,
//!   quantified by the `ablation_refine` experiment.
//!
//! Capacity is honoured: a move is only considered when the target
//! processor has a free slot in that window.

use crate::cost::cost_at;
use crate::schedule::Schedule;
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;

/// Outcome of a refinement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineStats {
    /// Number of single-center moves applied.
    pub moves_applied: u64,
    /// Total cost reduction achieved.
    pub cost_reduction: u64,
    /// Number of full sweeps until a fixed point (or the sweep limit).
    pub sweeps: u32,
}

/// Hill-climb `schedule` to a local optimum under single-center moves.
///
/// Deterministic: data and windows are scanned in ascending order and the
/// best (then lowest-id) improving processor is taken. `max_sweeps` bounds
/// the work; a fixed point is usually reached in a handful of sweeps.
pub fn refine(
    trace: &WindowedTrace,
    schedule: &mut Schedule,
    spec: MemorySpec,
    max_sweeps: u32,
) -> RefineStats {
    let grid = trace.grid();
    let nw = trace.num_windows();
    let nd = trace.num_data();
    let mut stats = RefineStats {
        moves_applied: 0,
        cost_reduction: 0,
        sweeps: 0,
    };

    // Work on a mutable centers matrix; `Schedule` itself stays immutable.
    let mut centers: Vec<Vec<pim_array::grid::ProcId>> = (0..nd)
        .map(|d| schedule.centers_of(DataId(d as u32)).to_vec())
        .collect();

    // Occupancy per window, derived from the current schedule.
    let mut mems: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();
    for cs in &centers {
        for (w, &p) in cs.iter().enumerate() {
            mems[w]
                .allocate(p)
                .expect("input schedule must satisfy the capacity spec");
        }
    }

    for _ in 0..max_sweeps {
        stats.sweeps += 1;
        let mut improved = false;
        for d in 0..nd {
            let refs = trace.refs(DataId(d as u32));
            for w in 0..nw {
                let cur = centers[d][w];
                let prev = (w > 0).then(|| centers[d][w - 1]);
                let next = (w + 1 < nw).then(|| centers[d][w + 1]);
                let local = |p| {
                    let mut c = cost_at(&grid, refs.window(w), p);
                    if let Some(q) = prev {
                        c += grid.dist(q, p);
                    }
                    if let Some(q) = next {
                        c += grid.dist(p, q);
                    }
                    c
                };
                let cur_cost = local(cur);
                let best = grid
                    .procs()
                    .filter(|&p| p == cur || mems[w].has_room(p))
                    .map(|p| (local(p), p.0))
                    .min()
                    .expect("non-empty grid");
                if best.0 < cur_cost {
                    let target = pim_array::grid::ProcId(best.1);
                    mems[w].release(cur);
                    mems[w].allocate(target).expect("has_room checked");
                    centers[d][w] = target;
                    stats.moves_applied += 1;
                    stats.cost_reduction += cur_cost - best.0;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    *schedule = Schedule::new(grid, centers);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::random_schedule;
    use crate::gomcds::gomcds_schedule;
    use crate::scds::scds_schedule;
    use pim_array::grid::Grid;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn trace() -> WindowedTrace {
        let grid = Grid::new(4, 4);
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 2)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 0), 1)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(1, 2), 2)]),
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(1, 2), 2)]),
                ],
            ],
        )
    }

    #[test]
    fn cannot_improve_gomcds_unbounded() {
        let t = trace();
        let spec = MemorySpec::unbounded();
        let mut s = gomcds_schedule(&t, spec);
        let before = s.evaluate(&t).total();
        let stats = refine(&t, &mut s, spec, 10);
        assert_eq!(stats.moves_applied, 0, "GOMCDS must be a local optimum");
        assert_eq!(s.evaluate(&t).total(), before);
    }

    #[test]
    fn improves_random_schedules() {
        let t = trace();
        let spec = MemorySpec::unbounded();
        let mut s = random_schedule(&t, 99);
        let before = s.evaluate(&t).total();
        let stats = refine(&t, &mut s, spec, 50);
        let after = s.evaluate(&t).total();
        assert_eq!(before - after, stats.cost_reduction);
        assert!(after < before, "random schedule should be improvable");
        // refined result can't beat the global optimum
        let opt = gomcds_schedule(&t, spec).evaluate(&t).total();
        assert!(after >= opt);
    }

    #[test]
    fn respects_capacity() {
        let t = trace();
        let spec = MemorySpec::uniform(1);
        let mut s = scds_schedule(&t, spec);
        refine(&t, &mut s, spec, 20);
        assert!(s.max_occupancy() <= 1);
    }

    #[test]
    fn sweep_limit_bounds_work() {
        let t = trace();
        let spec = MemorySpec::unbounded();
        let mut s = random_schedule(&t, 5);
        let stats = refine(&t, &mut s, spec, 1);
        assert_eq!(stats.sweeps, 1);
    }

    #[test]
    fn reduction_accounting_is_exact() {
        let t = trace();
        let spec = MemorySpec::unbounded();
        let mut s = random_schedule(&t, 1234);
        let before = s.evaluate(&t).total();
        let stats = refine(&t, &mut s, spec, 100);
        assert_eq!(before - stats.cost_reduction, s.evaluate(&t).total());
    }
}
