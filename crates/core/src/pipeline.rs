//! One-call scheduling front end.
//!
//! [`schedule`] dispatches to the individual algorithms; [`schedule_parallel`]
//! computes unconstrained schedules with per-datum parallelism (each datum's
//! center sequence is independent when memory is unbounded — capacity
//! resolution is inherently order-dependent and stays sequential so results
//! remain deterministic).

use crate::baseline;
use crate::cache::CostCache;
use crate::gomcds::{gomcds_schedule_cached, gomcds_schedule_with_uncached, Solver};
use crate::grouping::{grouped_schedule_with_cached, grouped_schedule_with_uncached, GroupMethod};
use crate::lomcds::{lomcds_schedule_cached, lomcds_schedule_uncached};
use crate::scds::{scds_schedule_cached, scds_schedule_uncached};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use pim_array::grid::ProcId;
use pim_array::layout::Layout;
use pim_array::memory::MemorySpec;
use pim_par::Pool;
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;
use serde::{Deserialize, Serialize};

/// Which scheduling algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Single-Center Data Scheduling (Algorithm 1).
    Scds,
    /// Local-Optimal Multiple-Center Data Scheduling.
    Lomcds,
    /// Global-Optimal Multiple-Center Data Scheduling (Algorithm 2), using
    /// the distance-transform solver.
    Gomcds,
    /// GOMCDS with the literal `O(m²)` cost-graph relaxation (ablation).
    GomcdsNaive,
    /// Algorithm 3 grouping with per-group local centers (Table 2).
    GroupedLocal,
    /// Algorithm 3 grouping with GOMCDS centers across groups (extension).
    GroupedGomcds,
}

impl Method {
    /// All methods, in the order the paper's tables report them.
    pub const ALL: [Method; 6] = [
        Method::Scds,
        Method::Lomcds,
        Method::Gomcds,
        Method::GomcdsNaive,
        Method::GroupedLocal,
        Method::GroupedGomcds,
    ];

    /// Short table label.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Scds => "SCDS",
            Method::Lomcds => "LOMCDS",
            Method::Gomcds => "GOMCDS",
            Method::GomcdsNaive => "GOMCDS(naive)",
            Method::GroupedLocal => "Grouped-LOMCDS",
            Method::GroupedGomcds => "Grouped-GOMCDS",
        }
    }
}

impl core::fmt::Display for Method {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Memory model under which to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// No capacity constraint (the pure scheduling question).
    Unbounded,
    /// Explicit uniform per-processor capacity.
    Capacity(u32),
    /// The paper's experimental rule: `factor ×` the minimum capacity a
    /// balanced distribution needs (the tables use `factor = 2`).
    ScaledMinimum {
        /// Multiplier over the balanced minimum.
        factor: u32,
    },
}

impl MemoryPolicy {
    /// Resolve to a concrete [`MemorySpec`] for a trace.
    pub fn resolve(&self, trace: &WindowedTrace) -> MemorySpec {
        match *self {
            MemoryPolicy::Unbounded => MemorySpec::unbounded(),
            MemoryPolicy::Capacity(c) => MemorySpec::uniform(c),
            MemoryPolicy::ScaledMinimum { factor } => {
                MemorySpec::scaled_minimum(&trace.grid(), trace.num_data(), factor)
            }
        }
    }
}

/// Run one scheduling method over a trace.
pub fn schedule(method: Method, trace: &WindowedTrace, policy: MemoryPolicy) -> Schedule {
    let cache = CostCache::build(trace);
    let mut ws = Workspace::new();
    schedule_cached(method, trace, policy, &cache, &mut ws)
}

/// Run one scheduling method from a prebuilt per-trace cost cache and a
/// reusable workspace. Building the cache once and calling this for several
/// methods (or memory policies) amortizes the reference-string scans; output
/// is bit-identical to [`schedule`].
pub fn schedule_cached(
    method: Method,
    trace: &WindowedTrace,
    policy: MemoryPolicy,
    cache: &CostCache,
    ws: &mut Workspace,
) -> Schedule {
    let spec = policy.resolve(trace);
    match method {
        Method::Scds => scds_schedule_cached(trace, spec, cache, ws),
        Method::Lomcds => lomcds_schedule_cached(trace, spec, cache, ws),
        Method::Gomcds => {
            gomcds_schedule_cached(trace, spec, Solver::DistanceTransform, cache, ws)
        }
        Method::GomcdsNaive => gomcds_schedule_cached(trace, spec, Solver::Naive, cache, ws),
        Method::GroupedLocal => grouped_schedule_with_cached(
            trace,
            spec,
            GroupMethod::LocalCenters,
            GroupMethod::LocalCenters,
            cache,
            ws,
        ),
        // Table 2 semantics: Algorithm 3 decides groups with LOMCDS costs;
        // GOMCDS then routes centers across the grouped windows.
        Method::GroupedGomcds => grouped_schedule_with_cached(
            trace,
            spec,
            GroupMethod::LocalCenters,
            GroupMethod::GomcdsCenters,
            cache,
            ws,
        ),
    }
}

/// Pre-cache reference dispatch: every method re-walks reference strings as
/// the seed implementation did. Bit-identical to [`schedule`]; kept for the
/// equivalence property tests and the `cached_vs_uncached` bench.
pub fn schedule_uncached(method: Method, trace: &WindowedTrace, policy: MemoryPolicy) -> Schedule {
    let spec = policy.resolve(trace);
    match method {
        Method::Scds => scds_schedule_uncached(trace, spec),
        Method::Lomcds => lomcds_schedule_uncached(trace, spec),
        Method::Gomcds => gomcds_schedule_with_uncached(trace, spec, Solver::DistanceTransform),
        Method::GomcdsNaive => gomcds_schedule_with_uncached(trace, spec, Solver::Naive),
        Method::GroupedLocal => grouped_schedule_with_uncached(
            trace,
            spec,
            GroupMethod::LocalCenters,
            GroupMethod::LocalCenters,
        ),
        Method::GroupedGomcds => grouped_schedule_with_uncached(
            trace,
            spec,
            GroupMethod::LocalCenters,
            GroupMethod::GomcdsCenters,
        ),
    }
}

/// Run one scheduling method with per-datum parallelism. Only meaningful
/// without a capacity constraint; results are identical to
/// `schedule(method, trace, MemoryPolicy::Unbounded)`.
///
/// The trace-level [`CostCache`] is built once up front (its per-datum
/// prefix sums are read-only and shared by every worker); each persistent
/// pool worker reuses one [`Workspace`] across all the data it claims, so
/// the parallel region allocates nothing but the output rows.
pub fn schedule_parallel(method: Method, trace: &WindowedTrace, pool: Pool) -> Schedule {
    let grid = trace.grid();
    let cache = CostCache::build(trace);
    let ids: Vec<DataId> = (0..trace.num_data() as u32).map(DataId).collect();
    let centers: Vec<Vec<ProcId>> = match method {
        Method::Scds => pim_par::parallel_map_with(pool, &ids, Workspace::new, |ws, _, &d| {
            let c = cache
                .datum(d)
                .optimal_center_range(0, trace.num_windows(), &mut ws.axes, &mut ws.table)
                .0;
            vec![c; trace.num_windows()]
        }),
        Method::Lomcds => pim_par::parallel_map_with(pool, &ids, Workspace::new, |ws, _, &d| {
            crate::lomcds::lomcds_centers_unconstrained_cached(cache.datum(d), ws)
        }),
        Method::Gomcds | Method::GomcdsNaive => {
            let solver = if method == Method::Gomcds {
                Solver::DistanceTransform
            } else {
                Solver::Naive
            };
            pim_par::parallel_map_with(pool, &ids, Workspace::new, |ws, _, &d| {
                crate::gomcds::gomcds_path_cached(&grid, cache.datum(d), solver, ws).0
            })
        }
        Method::GroupedLocal | Method::GroupedGomcds => {
            let gm = if method == Method::GroupedLocal {
                GroupMethod::LocalCenters
            } else {
                GroupMethod::GomcdsCenters
            };
            pim_par::parallel_map_with(pool, &ids, Workspace::new, |ws, _, &d| {
                let dc = cache.datum(d);
                // decisions always use LOMCDS costs (Algorithm 3 as run in
                // the paper); placement follows the method.
                let groups = crate::grouping::greedy_grouping_cached(
                    &grid,
                    dc,
                    GroupMethod::LocalCenters,
                    ws,
                );
                let group_centers = match gm {
                    GroupMethod::LocalCenters => {
                        crate::grouping::local_group_centers_cached(dc, &groups, ws)
                    }
                    GroupMethod::GomcdsCenters => {
                        crate::gomcds::gomcds_path_ranges(&grid, dc, &groups, ws).0
                    }
                };
                let mut per_window = vec![ProcId(0); dc.num_windows()];
                for (g, &c) in groups.iter().zip(&group_centers) {
                    for w in g.clone() {
                        per_window[w] = c;
                    }
                }
                per_window
            })
        }
    };
    Schedule::new(grid, centers)
}

/// Evaluate the standard method set (SCDS, LOMCDS, GOMCDS, grouped
/// variants) on one trace, returning `(method, total cost)` per method.
pub fn compare_methods(trace: &WindowedTrace, policy: MemoryPolicy) -> Vec<(Method, u64)> {
    let cache = CostCache::build(trace);
    let mut ws = Workspace::new();
    [
        Method::Scds,
        Method::Lomcds,
        Method::Gomcds,
        Method::GroupedLocal,
        Method::GroupedGomcds,
    ]
    .into_iter()
    .map(|m| {
        (
            m,
            schedule_cached(m, trace, policy, &cache, &mut ws)
                .evaluate(trace)
                .total(),
        )
    })
    .collect()
}

/// Comparison of every method (and the straight-forward baseline) on one
/// trace — the row format of the paper's tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Straight-forward (row-wise) baseline total cost.
    pub straightforward: u64,
    /// `(method, total cost, % improvement over straightforward)`.
    pub rows: Vec<(Method, u64, f64)>,
}

/// Run the paper's comparison: straight-forward baseline vs a set of
/// methods. `rows`/`cols` describe the data array shape for the baseline.
pub fn compare(
    trace: &WindowedTrace,
    rows: u32,
    cols: u32,
    methods: &[Method],
    policy: MemoryPolicy,
) -> Comparison {
    let sf = baseline::layout_schedule(trace, rows, cols, Layout::RowWise)
        .evaluate(trace)
        .total();
    let cache = CostCache::build(trace);
    let mut ws = Workspace::new();
    let out_rows = methods
        .iter()
        .map(|&m| {
            let cost = schedule_cached(m, trace, policy, &cache, &mut ws)
                .evaluate(trace)
                .total();
            (m, cost, crate::schedule::improvement_pct(sf, cost))
        })
        .collect();
    Comparison {
        straightforward: sf,
        rows: out_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::Grid;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn sample_trace() -> WindowedTrace {
        let grid = Grid::new(4, 4);
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(1, 0), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 4)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 2), 2)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1)]),
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 3)]),
                ],
            ],
        )
    }

    #[test]
    fn parallel_matches_sequential_unbounded() {
        let trace = sample_trace();
        for method in Method::ALL {
            let seq = schedule(method, &trace, MemoryPolicy::Unbounded);
            let par = schedule_parallel(method, &trace, Pool::with_threads(4));
            assert_eq!(
                seq.evaluate(&trace),
                par.evaluate(&trace),
                "{method} parallel/sequential cost mismatch"
            );
            assert_eq!(seq, par, "{method} parallel/sequential schedule mismatch");
        }
    }

    #[test]
    fn method_ordering_gomcds_best() {
        let trace = sample_trace();
        let c = compare(
            &trace,
            1,
            2,
            &[Method::Scds, Method::Lomcds, Method::Gomcds],
            MemoryPolicy::Unbounded,
        );
        let costs: Vec<u64> = c.rows.iter().map(|r| r.1).collect();
        assert!(costs[2] <= costs[1], "GOMCDS ≤ LOMCDS");
        assert!(costs[2] <= costs[0], "GOMCDS ≤ SCDS");
    }

    #[test]
    fn policy_resolution() {
        let trace = sample_trace();
        assert_eq!(
            MemoryPolicy::Unbounded.resolve(&trace).capacity_per_proc,
            u32::MAX
        );
        assert_eq!(
            MemoryPolicy::Capacity(5).resolve(&trace).capacity_per_proc,
            5
        );
        // 2 data / 16 procs → min 1 → factor 2 → 2
        assert_eq!(
            MemoryPolicy::ScaledMinimum { factor: 2 }
                .resolve(&trace)
                .capacity_per_proc,
            2
        );
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::Scds.name(), "SCDS");
        assert_eq!(Method::Gomcds.to_string(), "GOMCDS");
        assert_eq!(Method::ALL.len(), 6);
    }
}
