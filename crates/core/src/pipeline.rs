//! One-call scheduling front end: the [`Run`] builder and compatibility
//! shims over the [`mod@crate::registry`] engine.
//!
//! Historically this module held four parallel entry points (`schedule`,
//! `schedule_cached`, `schedule_uncached`, `schedule_parallel`) that each
//! re-dispatched on [`Method`]. All dispatch now lives in the
//! [`SchedulerRegistry`](crate::registry::SchedulerRegistry); the four
//! functions survive as thin shims and the one canonical path is:
//!
//! ```
//! use pim_array::grid::Grid;
//! use pim_trace::builder::TraceBuilder;
//! use pim_trace::ids::DataId;
//! use pim_sched::{MemoryPolicy, Run};
//!
//! let grid = Grid::new(4, 4);
//! let mut b = TraceBuilder::new(grid, 1);
//! b.step().access(grid.proc_xy(0, 0), DataId(0));
//! b.step().access(grid.proc_xy(3, 3), DataId(0));
//! let trace = b.finish().window_fixed(1);
//!
//! let mut run = Run::new(&trace).policy(MemoryPolicy::Unbounded);
//! let sched = run.run_named("gomcds").unwrap();
//! assert_eq!(sched.evaluate(&trace).total(), 6);
//! ```
//!
//! One [`Run`] amortizes its [`CostCache`] and workspace across every
//! scheduler it drives — `compare_methods` is just a `Run` looped over the
//! registry's comparison set.

use crate::baseline;
use crate::cache::CostCache;
use crate::context::{PrecedencePolicy, SchedContext};
use crate::error::SchedError;
use crate::registry::{registry, Scheduler};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use pim_array::layout::Layout;
use pim_array::memory::MemorySpec;
use pim_metrics::{Metrics, PoolUsage};
use pim_par::Pool;
use pim_trace::window::WindowedTrace;
use serde::{Deserialize, Serialize};

/// Which scheduling algorithm to run — the closed enum form of the paper's
/// method set, kept for exhaustive sweeps ([`Method::ALL`]) and pattern
/// matching in downstream code. Every variant maps 1:1 onto a registered
/// [`Scheduler`] ([`Method::scheduler`]); the registry also carries
/// strategies that have no `Method` variant (`baseline`, `online`,
/// `kcopy`, `replicate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Single-Center Data Scheduling (Algorithm 1).
    Scds,
    /// Local-Optimal Multiple-Center Data Scheduling.
    Lomcds,
    /// Global-Optimal Multiple-Center Data Scheduling (Algorithm 2), using
    /// the distance-transform solver.
    Gomcds,
    /// GOMCDS with the literal `O(m²)` cost-graph relaxation (ablation).
    GomcdsNaive,
    /// Algorithm 3 grouping with per-group local centers (Table 2).
    GroupedLocal,
    /// Algorithm 3 grouping with GOMCDS centers across groups (extension).
    GroupedGomcds,
}

impl Method {
    /// All methods, in the order the paper's tables report them.
    pub const ALL: [Method; 6] = [
        Method::Scds,
        Method::Lomcds,
        Method::Gomcds,
        Method::GomcdsNaive,
        Method::GroupedLocal,
        Method::GroupedGomcds,
    ];

    /// The canonical label — defined here exactly once, used verbatim as
    /// the registry name, the `Display` form, and the table label.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Scds => "SCDS",
            Method::Lomcds => "LOMCDS",
            Method::Gomcds => "GOMCDS",
            Method::GomcdsNaive => "GOMCDS-naive",
            Method::GroupedLocal => "Grouped-LOMCDS",
            Method::GroupedGomcds => "Grouped-GOMCDS",
        }
    }

    /// Parse a method label via the registry (case-insensitive, aliases
    /// accepted). Returns `None` for names that are registered but have no
    /// `Method` variant (e.g. `"online"`), or are unknown entirely.
    pub fn parse(name: &str) -> Option<Method> {
        let canonical = registry().get(name)?.name();
        Method::ALL.into_iter().find(|m| m.name() == canonical)
    }

    /// The registered scheduler implementing this method.
    pub fn scheduler(&self) -> &'static dyn Scheduler {
        registry()
            .get(self.name())
            .expect("every Method variant is registered")
    }
}

impl core::fmt::Display for Method {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Memory model under which to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// No capacity constraint (the pure scheduling question).
    Unbounded,
    /// Explicit uniform per-processor capacity.
    Capacity(u32),
    /// The paper's experimental rule: `factor ×` the minimum capacity a
    /// balanced distribution needs (the tables use `factor = 2`).
    ScaledMinimum {
        /// Multiplier over the balanced minimum.
        factor: u32,
    },
}

impl MemoryPolicy {
    /// Resolve to a concrete [`MemorySpec`] for a trace.
    pub fn resolve(&self, trace: &WindowedTrace) -> MemorySpec {
        self.resolve_parts(&trace.grid(), trace.num_data())
    }

    /// Resolve from the quantities the policy actually depends on — the
    /// grid and the datum population — so trace representations other than
    /// [`WindowedTrace`] (e.g. [`pim_trace::flat::FlatTrace`]) resolve
    /// identically.
    pub fn resolve_parts(&self, grid: &pim_array::grid::Grid, num_data: usize) -> MemorySpec {
        match *self {
            MemoryPolicy::Unbounded => MemorySpec::unbounded(),
            MemoryPolicy::Capacity(c) => MemorySpec::uniform(c),
            MemoryPolicy::ScaledMinimum { factor } => {
                MemorySpec::scaled_minimum(grid, num_data, factor)
            }
        }
    }
}

/// Builder for scheduling runs: one trace, one execution configuration,
/// any number of schedulers sharing the cache and workspace.
///
/// Configuration happens by value (`policy` / `cached` / `parallel`); the
/// [`SchedContext`] is built lazily on the first [`Run::run`] and reused —
/// reconfiguring after that point rebuilds it on the next run.
pub struct Run<'t> {
    trace: &'t WindowedTrace,
    policy: MemoryPolicy,
    cached: bool,
    pool: Option<Pool>,
    metrics: Metrics,
    precedence: PrecedencePolicy<'t>,
    ctx: Option<SchedContext<'t>>,
}

impl<'t> Run<'t> {
    /// A cached, sequential, unbounded run over `trace`.
    pub fn new(trace: &'t WindowedTrace) -> Self {
        Run {
            trace,
            policy: MemoryPolicy::Unbounded,
            cached: true,
            pool: None,
            metrics: Metrics::disabled(),
            precedence: PrecedencePolicy::None,
            ctx: None,
        }
    }

    /// Schedule under `policy` (default [`MemoryPolicy::Unbounded`]).
    pub fn policy(mut self, policy: MemoryPolicy) -> Self {
        self.policy = policy;
        self.ctx = None;
        self
    }

    /// Serve cost tables from a prebuilt [`CostCache`] (default `true`).
    /// `cached(false)` drives the pre-cache reference implementations —
    /// the bit-identity oracles the conformance suite compares against.
    pub fn cached(mut self, cached: bool) -> Self {
        self.cached = cached;
        self.ctx = None;
        self
    }

    /// Attach a worker pool for per-datum parallelism. Takes effect for
    /// cached runs under any memory policy (see
    /// [`SchedContext::parallel_pool`]): unconstrained runs parallelize
    /// outright, bounded runs use the deterministic two-phase scheme.
    /// Output is bit-identical to the sequential run either way. Uncached
    /// runs ignore the pool (they reproduce the seed implementations).
    pub fn parallel(mut self, pool: Pool) -> Self {
        self.pool = Some(pool);
        self.ctx = None;
        self
    }

    /// Attach a task precedence DAG. Only the precedence-aware schedulers
    /// (`list-scds`, `edf-scds`) read it; every other scheduler is
    /// unaffected, and without this call they all behave exactly as the
    /// precedence-free model.
    pub fn dag(mut self, dag: &'t pim_trace::dag::TaskDag) -> Self {
        self.precedence = PrecedencePolicy::Dag(dag);
        self.ctx = None;
        self
    }

    /// Record run observability into `metrics` (default: a disabled handle
    /// that records nothing). An enabled handle collects cache behavior,
    /// per-scheduler phase timings, capacity-displacement counts and — for
    /// parallel runs — worker-pool usage; read the totals back with
    /// [`Metrics::report`]. Collection never changes a schedule bit
    /// (property-tested in `tests/cache_equivalence.rs`).
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self.ctx = None;
        self
    }

    /// The context this run drives schedulers with (built on first use).
    pub fn context(&mut self) -> &mut SchedContext<'t> {
        if self.ctx.is_none() {
            let base = if self.cached {
                SchedContext::new(self.trace, self.policy)
            } else {
                SchedContext::uncached(self.trace, self.policy)
            };
            let base = base
                .with_metrics(self.metrics.clone())
                .with_precedence(self.precedence);
            self.ctx = Some(match self.pool {
                Some(pool) => base.with_pool(pool),
                None => base,
            });
        }
        self.ctx.as_mut().expect("context just built")
    }

    /// Run one scheduler. Returns [`SchedError::CapacityExhausted`] when
    /// the memory policy cannot hold the working set.
    pub fn run(&mut self, scheduler: &dyn Scheduler) -> Result<Schedule, SchedError> {
        let trace = self.trace;
        let metrics = self.metrics.clone();
        let pool_before = if metrics.is_enabled() && self.pool.is_some() {
            Some(pim_par::stats::snapshot())
        } else {
            None
        };
        let result = {
            let _t = metrics.phase(scheduler.name());
            scheduler.schedule(self.context(), trace)
        };
        if let Some(before) = pool_before {
            let delta = pim_par::stats::snapshot().since(&before);
            metrics.record_pool(PoolUsage {
                jobs: delta.jobs,
                worker_tasks: delta.total_worker_tasks(),
                submitter_tasks: delta.submitter_tasks,
                max_worker_tasks: delta.max_worker_tasks(),
                parks: delta.parks,
            });
        }
        result
    }

    /// Run the scheduler registered under `name` (case-insensitive,
    /// aliases accepted); [`SchedError::UnknownScheduler`] if no such
    /// registration exists.
    pub fn run_named(&mut self, name: &str) -> Result<Schedule, SchedError> {
        let scheduler = registry()
            .get(name)
            .ok_or_else(|| SchedError::UnknownScheduler(name.to_string()))?;
        self.run(scheduler)
    }

    /// Run a [`Method`]'s registered scheduler.
    pub fn run_method(&mut self, method: Method) -> Result<Schedule, SchedError> {
        self.run(method.scheduler())
    }
}

/// Run one scheduling method over a trace.
///
/// Compatibility shim over [`Run`] — prefer
/// `Run::new(trace).policy(policy).run_method(method)` for a typed
/// [`SchedError`] instead of the panic below.
///
/// # Panics
/// Panics when the memory policy cannot hold the working set.
pub fn schedule(method: Method, trace: &WindowedTrace, policy: MemoryPolicy) -> Schedule {
    Run::new(trace)
        .policy(policy)
        .run_method(method)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Run one scheduling method from a prebuilt per-trace cost cache and a
/// reusable workspace. Building the cache once and calling this for several
/// methods (or memory policies) amortizes the reference-string scans; output
/// is bit-identical to [`schedule`].
///
/// Compatibility shim — a [`Run`] owns and amortizes the cache/workspace
/// itself, so new code passes neither. This wrapper clones the caller's
/// cache view (cheap relative to a build) and borrows their warm buffers.
pub fn schedule_cached<'t>(
    method: Method,
    trace: &'t WindowedTrace,
    policy: MemoryPolicy,
    cache: &CostCache<'t>,
    ws: &mut Workspace,
) -> Schedule {
    let mut ctx = SchedContext::with_cache(trace, policy, cache.clone());
    ctx.swap_workspace(ws);
    let sched = method
        .scheduler()
        .schedule(&mut ctx, trace)
        .unwrap_or_else(|e| panic!("{e}"));
    ctx.swap_workspace(ws);
    sched
}

/// Pre-cache reference dispatch: every method re-walks reference strings as
/// the seed implementation did. Bit-identical to [`schedule`]; kept for the
/// equivalence property tests and the `cached_vs_uncached` bench.
///
/// Compatibility shim — prefer `Run::new(trace).cached(false)`.
pub fn schedule_uncached(method: Method, trace: &WindowedTrace, policy: MemoryPolicy) -> Schedule {
    Run::new(trace)
        .policy(policy)
        .cached(false)
        .run_method(method)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Run one scheduling method with per-datum parallelism; results are
/// identical to `schedule(method, trace, MemoryPolicy::Unbounded)`. For a
/// bounded policy, use `Run::new(trace).policy(policy).parallel(pool)` —
/// the two-phase scheme keeps that bit-identical to sequential too.
///
/// The trace-level [`CostCache`] is shared read-only by every worker (each
/// datum's prefix tables build lazily on whichever worker first needs
/// them); each persistent pool worker reuses one [`Workspace`] across all
/// the data it claims, so the parallel region allocates nothing but the
/// output rows.
///
/// Compatibility shim — prefer `Run::new(trace).parallel(pool)`.
pub fn schedule_parallel(method: Method, trace: &WindowedTrace, pool: Pool) -> Schedule {
    Run::new(trace)
        .parallel(pool)
        .run_method(method)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Evaluate the registry's comparison set (SCDS, LOMCDS, GOMCDS, grouped
/// variants — any registered [`Scheduler`] with
/// [`in_comparison`](Scheduler::in_comparison)) on one trace, returning
/// `(name, total cost)` per strategy. One shared cache serves the sweep.
pub fn compare_methods(trace: &WindowedTrace, policy: MemoryPolicy) -> Vec<(&'static str, u64)> {
    let mut run = Run::new(trace).policy(policy);
    registry()
        .comparison_set()
        .map(|s| {
            let sched = run.run(s).unwrap_or_else(|e| panic!("{e}"));
            (s.name(), sched.evaluate(trace).total())
        })
        .collect()
}

/// Comparison of a scheduler set (and the straight-forward baseline) on
/// one trace — the row format of the paper's tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Straight-forward (row-wise) baseline total cost.
    pub straightforward: u64,
    /// `(scheduler name, total cost, % improvement over straightforward)`.
    pub rows: Vec<(&'static str, u64, f64)>,
}

/// Run the paper's comparison: straight-forward baseline vs a set of
/// registered schedulers (resolve names with
/// [`crate::registry::schedulers`]). `rows`/`cols` describe the data array
/// shape for the baseline.
pub fn compare(
    trace: &WindowedTrace,
    rows: u32,
    cols: u32,
    schedulers: &[&dyn Scheduler],
    policy: MemoryPolicy,
) -> Comparison {
    let sf = baseline::layout_schedule(trace, rows, cols, Layout::RowWise)
        .evaluate(trace)
        .total();
    let mut run = Run::new(trace).policy(policy);
    let out_rows = schedulers
        .iter()
        .map(|&s| {
            let sched = run.run(s).unwrap_or_else(|e| panic!("{e}"));
            let cost = sched.evaluate(trace).total();
            (s.name(), cost, crate::schedule::improvement_pct(sf, cost))
        })
        .collect();
    Comparison {
        straightforward: sf,
        rows: out_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::schedulers;
    use pim_array::grid::Grid;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn sample_trace() -> WindowedTrace {
        let grid = Grid::new(4, 4);
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(1, 0), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 4)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 2), 2)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1)]),
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 3)]),
                ],
            ],
        )
    }

    #[test]
    fn parallel_matches_sequential_unbounded() {
        let trace = sample_trace();
        for method in Method::ALL {
            let seq = schedule(method, &trace, MemoryPolicy::Unbounded);
            let par = schedule_parallel(method, &trace, Pool::with_threads(4));
            assert_eq!(
                seq.evaluate(&trace),
                par.evaluate(&trace),
                "{method} parallel/sequential cost mismatch"
            );
            assert_eq!(seq, par, "{method} parallel/sequential schedule mismatch");
        }
    }

    #[test]
    fn method_ordering_gomcds_best() {
        let trace = sample_trace();
        let c = compare(
            &trace,
            1,
            2,
            &schedulers(&["SCDS", "LOMCDS", "GOMCDS"]),
            MemoryPolicy::Unbounded,
        );
        let costs: Vec<u64> = c.rows.iter().map(|r| r.1).collect();
        assert!(costs[2] <= costs[1], "GOMCDS ≤ LOMCDS");
        assert!(costs[2] <= costs[0], "GOMCDS ≤ SCDS");
    }

    #[test]
    fn policy_resolution() {
        let trace = sample_trace();
        assert_eq!(
            MemoryPolicy::Unbounded.resolve(&trace).capacity_per_proc,
            u32::MAX
        );
        assert_eq!(
            MemoryPolicy::Capacity(5).resolve(&trace).capacity_per_proc,
            5
        );
        // 2 data / 16 procs → min 1 → factor 2 → 2
        assert_eq!(
            MemoryPolicy::ScaledMinimum { factor: 2 }
                .resolve(&trace)
                .capacity_per_proc,
            2
        );
    }

    #[test]
    fn method_names_round_trip() {
        assert_eq!(Method::Scds.name(), "SCDS");
        assert_eq!(Method::Gomcds.to_string(), "GOMCDS");
        assert_eq!(Method::GomcdsNaive.name(), "GOMCDS-naive");
        assert_eq!(Method::ALL.len(), 6);
        for m in Method::ALL {
            assert_eq!(Method::parse(m.name()), Some(m));
            assert_eq!(m.scheduler().name(), m.name());
        }
        assert_eq!(Method::parse("gomcds(naive)"), Some(Method::GomcdsNaive));
        assert_eq!(Method::parse("online"), None, "registered but not a Method");
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn run_builder_amortizes_one_context() {
        let trace = sample_trace();
        let mut run = Run::new(&trace).policy(MemoryPolicy::ScaledMinimum { factor: 2 });
        let a = run.run_named("gomcds").expect("registered");
        let b = run.run_method(Method::Gomcds).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a,
            schedule(
                Method::Gomcds,
                &trace,
                MemoryPolicy::ScaledMinimum { factor: 2 }
            )
        );
        assert!(matches!(
            run.run_named("no-such-method"),
            Err(SchedError::UnknownScheduler(_))
        ));
    }

    #[test]
    fn compare_methods_reports_comparison_set() {
        let trace = sample_trace();
        let rows = compare_methods(&trace, MemoryPolicy::Unbounded);
        let names: Vec<_> = rows.iter().map(|r| r.0).collect();
        assert_eq!(
            names,
            vec![
                "SCDS",
                "LOMCDS",
                "GOMCDS",
                "Grouped-LOMCDS",
                "Grouped-GOMCDS"
            ]
        );
        let gomcds = rows[2].1;
        assert!(rows.iter().all(|r| r.1 >= gomcds), "GOMCDS is optimal");
    }
}
