//! The `Scheduler` trait and the scheduler registry — the single dispatch
//! point for every scheduling strategy in the crate.
//!
//! A scheduling strategy is a value implementing [`Scheduler`]: it has a
//! stable name and turns a ([`SchedContext`], trace) pair into a
//! [`Schedule`]. The [`SchedulerRegistry`] maps names (case-insensitive,
//! with a small alias table) to registered strategies; [`registry`] exposes
//! one process-wide registry holding every built-in strategy:
//!
//! | name | strategy |
//! |---|---|
//! | `SCDS` | Algorithm 1 single-center scheduling |
//! | `LOMCDS` | per-window local-optimal centers |
//! | `GOMCDS` | Algorithm 2 global optimum (distance-transform solver) |
//! | `GOMCDS-naive` | Algorithm 2 with the literal `O(m²)` relaxation |
//! | `Grouped-LOMCDS` | Algorithm 3 grouping, per-group local centers |
//! | `Grouped-GOMCDS` | Algorithm 3 grouping, GOMCDS across groups |
//! | `baseline` | static row-wise distribution (the paper's S.F.) |
//! | `online` | streaming policy with movement hysteresis |
//! | `kcopy` | K-copy primaries (single-copy projection) |
//! | `replicate` | two-copy primaries (single-copy projection) |
//! | `list-scds` | critical-path list scheduling over a task DAG |
//! | `edf-scds` | deadline-ordered (EDF) scheduling over a task DAG |
//!
//! Adding a strategy takes one impl plus one registration line (see the
//! worked example in `DESIGN.md`); the CLI (`--method`, `list-methods`),
//! the simulator (`pim_sim::simulate_named`) and the bench sweeps all pick
//! it up through the registry — there is no other dispatch path.
//!
//! This module is the **only** place allowed to match on
//! [`Method`](crate::pipeline::Method): the enum survives for backwards
//! compatibility and maps 1:1 onto registered names.

use crate::context::SchedContext;
use crate::error::{ensure_feasible, SchedError};
use crate::gomcds::Solver;
use crate::grouping::GroupMethod;
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use pim_array::grid::ProcId;
use pim_array::layout::Layout;
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;
use std::sync::OnceLock;

/// A pluggable scheduling strategy.
///
/// Implementations read the execution mode off the context: serve cost
/// tables from [`SchedContext::cache_and_ws`] when a cache is present,
/// fall back to the raw reference strings when it is not, and use
/// [`SchedContext::parallel_pool`] for per-datum parallelism when it
/// returns a pool. All modes must be bit-identical (property-tested for
/// every registered strategy in `tests/cache_equivalence.rs`).
pub trait Scheduler: Send + Sync {
    /// Stable registry name (also the table/display label). Lookup is
    /// case-insensitive.
    fn name(&self) -> &'static str;

    /// Compute the schedule for `trace` under the context's memory policy.
    ///
    /// Every built-in strategy checks feasibility up front and returns
    /// [`SchedError::CapacityExhausted`] — never panics — when the memory
    /// spec cannot hold the working set (uniform contract, property-tested
    /// across the registry in `tests/capacity_compliance.rs`).
    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError>;

    /// One-line human description (shown by `pim-cli list-methods`).
    fn description(&self) -> &'static str {
        ""
    }

    /// Whether cost-comparison sweeps (`compare_methods`, the bench
    /// tables) include this strategy by default. Ablations, baselines and
    /// projections opt out; new strategies are included unless they say
    /// otherwise.
    fn in_comparison(&self) -> bool {
        true
    }

    /// Whether this strategy exploits [`SchedContext::parallel_pool`]:
    /// per-datum fan-out when the policy is unbounded, the two-phase
    /// compute-then-replay scheme when capacity is bounded. Strategies
    /// that ignore the pool (inherently sequential streaming policies,
    /// static baselines) say `false`; `pim-cli list-methods` reports the
    /// flag.
    fn parallelizable(&self) -> bool {
        true
    }

    /// Whether the big-instance flat fast path (`pim-cli run --flat`,
    /// driving [`crate::flat`] straight off a
    /// [`pim_trace::flat::FlatTrace`]) implements this strategy.
    /// `pim-cli list-methods` reports the flag so `--flat` users can see
    /// which methods have fast paths.
    fn flat_capable(&self) -> bool {
        false
    }

    /// Whether this strategy reads a task DAG off
    /// [`SchedContext::dag`] (precedence-aware placement). Strategies
    /// saying `false` ignore an attached DAG entirely.
    fn precedence_aware(&self) -> bool {
        false
    }

    /// Whether [`crate::incremental::IncrementalRun`] can drive this
    /// strategy under trace churn (dirty-tracked delta re-solves instead
    /// of from-scratch reruns). `pim-cli list-methods` reports the flag.
    fn incremental(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Built-in strategies
// ---------------------------------------------------------------------------

/// Algorithm 1: one center per datum for the whole execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScdsScheduler;

impl Scheduler for ScdsScheduler {
    fn name(&self) -> &'static str {
        "SCDS"
    }

    fn description(&self) -> &'static str {
        "Algorithm 1: single center per datum, no run-time movement"
    }

    fn flat_capable(&self) -> bool {
        true
    }

    fn incremental(&self) -> bool {
        true
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        let spec = ctx.spec();
        ensure_feasible(&ctx.grid(), spec, trace.num_data())?;
        if let Some(pool) = ctx.parallel_pool() {
            if spec.capacity_per_proc == u32::MAX {
                // Unbounded: every datum is independent — pure fan-out.
                let cache = ctx.cache().expect("parallel_pool implies cache");
                let nw = trace.num_windows();
                let ids: Vec<DataId> = (0..trace.num_data() as u32).map(DataId).collect();
                let centers = pim_par::parallel_map_with_chunked(
                    pool,
                    &ids,
                    pim_par::auto_chunk(ids.len(), pool.threads()),
                    Workspace::new,
                    |ws, _, &d| {
                        let c = cache
                            .datum(d)
                            .optimal_center_range(0, nw, &mut ws.axes, &mut ws.table)
                            .0;
                        vec![c; nw]
                    },
                );
                return Ok(Schedule::new(ctx.grid(), centers));
            }
            // Bounded: two-phase — parallel per-datum tables, sequential
            // capacity replay in datum order.
            let (cache, ws) = ctx.cache_and_ws();
            let cache = cache.expect("parallel_pool implies cache");
            return crate::scds::scds_schedule_parallel(trace, spec, cache, pool, ws);
        }
        match ctx.cache_and_ws() {
            (Some(cache), ws) => crate::scds::scds_schedule_cached(trace, spec, cache, ws),
            (None, _) => crate::scds::scds_schedule_uncached(trace, spec),
        }
    }
}

/// Local-optimal multiple-center scheduling: per-window optimal centers.
#[derive(Debug, Clone, Copy, Default)]
pub struct LomcdsScheduler;

impl Scheduler for LomcdsScheduler {
    fn name(&self) -> &'static str {
        "LOMCDS"
    }

    fn description(&self) -> &'static str {
        "per-window local-optimal centers; movement between windows"
    }

    fn flat_capable(&self) -> bool {
        true
    }

    fn incremental(&self) -> bool {
        true
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        let spec = ctx.spec();
        ensure_feasible(&ctx.grid(), spec, trace.num_data())?;
        if let Some(pool) = ctx.parallel_pool() {
            if spec.capacity_per_proc == u32::MAX {
                let cache = ctx.cache().expect("parallel_pool implies cache");
                let ids: Vec<DataId> = (0..trace.num_data() as u32).map(DataId).collect();
                let centers = pim_par::parallel_map_with_chunked(
                    pool,
                    &ids,
                    pim_par::auto_chunk(ids.len(), pool.threads()),
                    Workspace::new,
                    |ws, _, &d| {
                        crate::lomcds::lomcds_centers_unconstrained_cached(cache.datum(d), ws)
                    },
                );
                return Ok(Schedule::new(ctx.grid(), centers));
            }
            let (cache, ws) = ctx.cache_and_ws();
            let cache = cache.expect("parallel_pool implies cache");
            return crate::lomcds::lomcds_schedule_parallel(trace, spec, cache, pool, ws);
        }
        match ctx.cache_and_ws() {
            (Some(cache), ws) => crate::lomcds::lomcds_schedule_cached(trace, spec, cache, ws),
            (None, _) => crate::lomcds::lomcds_schedule_uncached(trace, spec),
        }
    }
}

/// Algorithm 2: global-optimal multiple-center scheduling.
#[derive(Debug, Clone, Copy)]
pub struct GomcdsScheduler {
    /// Which cost-graph solver runs the layered shortest path.
    pub solver: Solver,
}

impl GomcdsScheduler {
    /// The production distance-transform solver.
    pub fn fast() -> Self {
        GomcdsScheduler {
            solver: Solver::DistanceTransform,
        }
    }

    /// The literal `O(m²)` relaxation (ablation).
    pub fn naive() -> Self {
        GomcdsScheduler {
            solver: Solver::Naive,
        }
    }
}

impl Scheduler for GomcdsScheduler {
    fn name(&self) -> &'static str {
        match self.solver {
            Solver::DistanceTransform => "GOMCDS",
            Solver::Naive => "GOMCDS-naive",
        }
    }

    fn description(&self) -> &'static str {
        match self.solver {
            Solver::DistanceTransform => {
                "Algorithm 2: global optimum per datum (distance-transform solver)"
            }
            Solver::Naive => "Algorithm 2 with the literal O(m^2) relaxation (ablation)",
        }
    }

    fn in_comparison(&self) -> bool {
        // The naive solver is an ablation: same answer, slower.
        self.solver == Solver::DistanceTransform
    }

    fn flat_capable(&self) -> bool {
        // The flat fast path only drives the production solver.
        self.solver == Solver::DistanceTransform
    }

    fn incremental(&self) -> bool {
        // The incremental engine resumes the distance-transform DP only.
        self.solver == Solver::DistanceTransform
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        let spec = ctx.spec();
        ensure_feasible(&ctx.grid(), spec, trace.num_data())?;
        if let Some(pool) = ctx.parallel_pool() {
            if spec.capacity_per_proc == u32::MAX {
                let cache = ctx.cache().expect("parallel_pool implies cache");
                let grid = ctx.grid();
                let solver = self.solver;
                let ids: Vec<DataId> = (0..trace.num_data() as u32).map(DataId).collect();
                let centers = pim_par::parallel_map_with_chunked(
                    pool,
                    &ids,
                    pim_par::auto_chunk(ids.len(), pool.threads()),
                    Workspace::new,
                    |ws, _, &d| {
                        crate::gomcds::gomcds_path_cached(&grid, cache.datum(d), solver, ws).0
                    },
                );
                return Ok(Schedule::new(grid, centers));
            }
            let solver = self.solver;
            let (cache, ws) = ctx.cache_and_ws();
            let cache = cache.expect("parallel_pool implies cache");
            return crate::gomcds::gomcds_schedule_parallel(trace, spec, solver, cache, pool, ws);
        }
        match ctx.cache_and_ws() {
            (Some(cache), ws) => {
                crate::gomcds::gomcds_schedule_cached(trace, spec, self.solver, cache, ws)
            }
            (None, _) => crate::gomcds::gomcds_schedule_with_uncached(trace, spec, self.solver),
        }
    }
}

/// Algorithm 3: execution-window grouping. Group decisions always use
/// LOMCDS costs (as run in the paper); `place` chooses how the grouped
/// windows are centered.
#[derive(Debug, Clone, Copy)]
pub struct GroupedScheduler {
    /// Center placement across the decided groups.
    pub place: GroupMethod,
}

impl Scheduler for GroupedScheduler {
    fn name(&self) -> &'static str {
        match self.place {
            GroupMethod::LocalCenters => "Grouped-LOMCDS",
            GroupMethod::GomcdsCenters => "Grouped-GOMCDS",
        }
    }

    fn description(&self) -> &'static str {
        match self.place {
            GroupMethod::LocalCenters => "Algorithm 3 grouping with per-group local centers",
            GroupMethod::GomcdsCenters => "Algorithm 3 grouping with GOMCDS centers across groups",
        }
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        let spec = ctx.spec();
        ensure_feasible(&ctx.grid(), spec, trace.num_data())?;
        if let Some(pool) = ctx.parallel_pool() {
            if spec.capacity_per_proc == u32::MAX {
                let cache = ctx.cache().expect("parallel_pool implies cache");
                let grid = ctx.grid();
                let place = self.place;
                let ids: Vec<DataId> = (0..trace.num_data() as u32).map(DataId).collect();
                let centers = pim_par::parallel_map_with_chunked(
                    pool,
                    &ids,
                    pim_par::auto_chunk(ids.len(), pool.threads()),
                    Workspace::new,
                    |ws, _, &d| {
                        let dc = cache.datum(d);
                        let groups = crate::grouping::greedy_grouping_cached(
                            &grid,
                            dc,
                            GroupMethod::LocalCenters,
                            ws,
                        );
                        let group_centers = match place {
                            GroupMethod::LocalCenters => {
                                crate::grouping::local_group_centers_cached(dc, &groups, ws)
                            }
                            GroupMethod::GomcdsCenters => {
                                crate::gomcds::gomcds_path_ranges(&grid, dc, &groups, ws).0
                            }
                        };
                        let mut per_window = vec![ProcId(0); dc.num_windows()];
                        for (g, &c) in groups.iter().zip(&group_centers) {
                            for w in g.clone() {
                                per_window[w] = c;
                            }
                        }
                        per_window
                    },
                );
                return Ok(Schedule::new(grid, centers));
            }
            let place = self.place;
            let (cache, ws) = ctx.cache_and_ws();
            let cache = cache.expect("parallel_pool implies cache");
            return crate::grouping::grouped_schedule_parallel(
                trace,
                spec,
                GroupMethod::LocalCenters,
                place,
                cache,
                pool,
                ws,
            );
        }
        match ctx.cache_and_ws() {
            (Some(cache), ws) => crate::grouping::grouped_schedule_with_cached(
                trace,
                spec,
                GroupMethod::LocalCenters,
                self.place,
                cache,
                ws,
            ),
            (None, _) => crate::grouping::grouped_schedule_with_uncached(
                trace,
                spec,
                GroupMethod::LocalCenters,
                self.place,
            ),
        }
    }
}

/// The paper's straight-forward baseline: a static `layout` distribution
/// of a near-square data array inferred from the datum count (`rows =
/// ⌊√n⌋`, `cols = ⌊n/rows⌋`, remainder striped cyclically). Ignores the
/// memory policy — a static distribution is what the schedulers are
/// measured against, not a capacity-aware competitor.
#[derive(Debug, Clone, Copy)]
pub struct BaselineScheduler {
    /// Static data layout (the paper's S.F. is [`Layout::RowWise`]).
    pub layout: Layout,
}

impl Default for BaselineScheduler {
    fn default() -> Self {
        BaselineScheduler {
            layout: Layout::RowWise,
        }
    }
}

impl Scheduler for BaselineScheduler {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn description(&self) -> &'static str {
        "static row-wise distribution (the paper's straight-forward baseline)"
    }

    fn in_comparison(&self) -> bool {
        // The comparison tables already report it as the S.F. column.
        false
    }

    fn parallelizable(&self) -> bool {
        // A static layout needs no per-datum computation worth fanning out.
        false
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        // The layout itself ignores capacity, but the uniform registry
        // contract still rejects an array that cannot hold the data.
        ensure_feasible(&ctx.grid(), ctx.spec(), trace.num_data())?;
        let nd = trace.num_data() as u32;
        let rows = (nd as f64).sqrt().floor().max(1.0) as u32;
        let cols = (nd / rows).max(1);
        Ok(crate::baseline::layout_schedule(
            trace,
            rows,
            cols,
            self.layout,
        ))
    }
}

/// Streaming scheduler: windows are revealed one at a time; a datum moves
/// to its local optimum only when the estimated saving exceeds
/// `threshold ×` the movement cost.
#[derive(Debug, Clone, Copy)]
pub struct OnlineScheduler {
    /// Movement hysteresis; `0.0` moves on any strict improvement.
    pub threshold: f64,
}

impl Default for OnlineScheduler {
    fn default() -> Self {
        OnlineScheduler { threshold: 0.0 }
    }
}

impl Scheduler for OnlineScheduler {
    fn name(&self) -> &'static str {
        "online"
    }

    fn description(&self) -> &'static str {
        "streaming policy: per-window local optima with movement hysteresis"
    }

    fn in_comparison(&self) -> bool {
        // Extension, not a paper table column; sweep_online reports it.
        false
    }

    fn parallelizable(&self) -> bool {
        // Streaming decisions depend on prior windows' placements —
        // inherently sequential.
        false
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        crate::online::online_schedule(
            trace,
            crate::online::OnlinePolicy {
                threshold: self.threshold,
                spec: ctx.spec(),
            },
        )
    }
}

/// Single-copy projection of the K-copy replication extension: the
/// primary trajectories, which are exactly the (capacity-aware) GOMCDS
/// paths — the replica sets live in [`crate::kcopy::kcopy_schedule`],
/// which this registration points users at.
#[derive(Debug, Clone, Copy)]
pub struct KCopyScheduler {
    /// Copies per datum in the full K-copy plan (`k ≥ 1`).
    pub k: usize,
}

impl Default for KCopyScheduler {
    fn default() -> Self {
        KCopyScheduler { k: 3 }
    }
}

impl Scheduler for KCopyScheduler {
    fn name(&self) -> &'static str {
        "kcopy"
    }

    fn description(&self) -> &'static str {
        "K-copy replication primaries (full replica plans: pim_sched::kcopy)"
    }

    fn in_comparison(&self) -> bool {
        // Projection duplicates GOMCDS; its real evaluation is replica-aware.
        false
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        GomcdsScheduler::fast().schedule(ctx, trace)
    }
}

/// Single-copy projection of the two-copy replication extension (see
/// [`KCopyScheduler`]; full plans live in
/// [`crate::replicate::replicated_schedule`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicateScheduler;

impl Scheduler for ReplicateScheduler {
    fn name(&self) -> &'static str {
        "replicate"
    }

    fn description(&self) -> &'static str {
        "two-copy replication primaries (full plans: pim_sched::replicate)"
    }

    fn in_comparison(&self) -> bool {
        false
    }

    fn schedule(
        &self,
        ctx: &mut SchedContext,
        trace: &WindowedTrace,
    ) -> Result<Schedule, SchedError> {
        GomcdsScheduler::fast().schedule(ctx, trace)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Alias table: alternate spellings accepted by lookup, resolved before
/// the case-insensitive name match. Kept tiny and explicit.
const ALIASES: &[(&str, &str)] = &[
    ("grouped", "grouped-lomcds"),
    ("grouped-local", "grouped-lomcds"),
    ("gomcdsnaive", "gomcds-naive"),
    ("gomcds(naive)", "gomcds-naive"),
];

/// Normalize a name for lookup: ASCII-lowercase, trimmed.
fn normalize(name: &str) -> String {
    name.trim().to_ascii_lowercase()
}

/// An ordered collection of named scheduling strategies. Registration
/// order is the order `iter`/`names` report (and therefore the column
/// order of registry-driven tables).
pub struct SchedulerRegistry {
    entries: Vec<Box<dyn Scheduler>>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchedulerRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry holding every built-in strategy, in the order the
    /// paper's tables report them followed by the extensions.
    pub fn standard() -> Self {
        let mut r = SchedulerRegistry::new();
        r.register(Box::new(ScdsScheduler));
        r.register(Box::new(LomcdsScheduler));
        r.register(Box::new(GomcdsScheduler::fast()));
        r.register(Box::new(GomcdsScheduler::naive()));
        r.register(Box::new(GroupedScheduler {
            place: GroupMethod::LocalCenters,
        }));
        r.register(Box::new(GroupedScheduler {
            place: GroupMethod::GomcdsCenters,
        }));
        r.register(Box::new(BaselineScheduler::default()));
        r.register(Box::new(OnlineScheduler::default()));
        r.register(Box::new(KCopyScheduler::default()));
        r.register(Box::new(ReplicateScheduler));
        r.register(Box::new(crate::precedence::ListScdsScheduler));
        r.register(Box::new(crate::precedence::EdfScdsScheduler));
        r
    }

    /// Register a strategy.
    ///
    /// # Panics
    /// Panics when another entry already claims the same normalized name —
    /// duplicate registration is a programming error, not an input error.
    pub fn register(&mut self, scheduler: Box<dyn Scheduler>) {
        let name = normalize(scheduler.name());
        assert!(
            self.entries.iter().all(|e| normalize(e.name()) != name),
            "duplicate scheduler registration: {}",
            scheduler.name()
        );
        self.entries.push(scheduler);
    }

    /// Look a strategy up by name (case-insensitive; aliases accepted).
    pub fn get(&self, name: &str) -> Option<&dyn Scheduler> {
        let mut key = normalize(name);
        if let Some(&(_, canonical)) = ALIASES.iter().find(|&&(alias, _)| alias == key) {
            key = canonical.to_string();
        }
        self.entries
            .iter()
            .find(|e| normalize(e.name()) == key)
            .map(Box::as_ref)
    }

    /// Every registered strategy, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scheduler> {
        self.entries.iter().map(Box::as_ref)
    }

    /// The strategies cost-comparison sweeps run by default
    /// (`in_comparison`), in registration order.
    pub fn comparison_set(&self) -> impl Iterator<Item = &dyn Scheduler> {
        self.iter().filter(|s| s.in_comparison())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        SchedulerRegistry::new()
    }
}

/// The process-wide registry of built-in strategies. Callers needing
/// custom strategies build their own [`SchedulerRegistry`] (or call
/// [`Scheduler::schedule`] directly).
pub fn registry() -> &'static SchedulerRegistry {
    static REGISTRY: OnceLock<SchedulerRegistry> = OnceLock::new();
    REGISTRY.get_or_init(SchedulerRegistry::standard)
}

/// Resolve a list of names against the global registry.
///
/// # Panics
/// Panics on an unknown name (bench/table configuration error).
pub fn schedulers(names: &[&str]) -> Vec<&'static dyn Scheduler> {
    names
        .iter()
        .map(|n| {
            registry()
                .get(n)
                .unwrap_or_else(|| panic!("unknown scheduler '{n}'"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MemoryPolicy, Method};
    use pim_array::grid::Grid;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    #[test]
    fn standard_registry_contents() {
        let names = registry().names();
        assert_eq!(
            names,
            vec![
                "SCDS",
                "LOMCDS",
                "GOMCDS",
                "GOMCDS-naive",
                "Grouped-LOMCDS",
                "Grouped-GOMCDS",
                "baseline",
                "online",
                "kcopy",
                "replicate",
                "list-scds",
                "edf-scds",
            ]
        );
    }

    #[test]
    fn capability_flags() {
        let r = registry();
        let flat: Vec<_> = r
            .iter()
            .filter(|s| s.flat_capable())
            .map(|s| s.name())
            .collect();
        assert_eq!(flat, vec!["SCDS", "LOMCDS", "GOMCDS"]);
        let dag: Vec<_> = r
            .iter()
            .filter(|s| s.precedence_aware())
            .map(|s| s.name())
            .collect();
        assert_eq!(dag, vec!["list-scds", "edf-scds"]);
        let incr: Vec<_> = r
            .iter()
            .filter(|s| s.incremental())
            .map(|s| s.name())
            .collect();
        assert_eq!(incr, vec!["SCDS", "LOMCDS", "GOMCDS"]);
    }

    #[test]
    fn lookup_is_case_insensitive_with_aliases() {
        let r = registry();
        assert_eq!(r.get("scds").unwrap().name(), "SCDS");
        assert_eq!(r.get("  GOMCDS ").unwrap().name(), "GOMCDS");
        assert_eq!(r.get("grouped").unwrap().name(), "Grouped-LOMCDS");
        assert_eq!(r.get("grouped-local").unwrap().name(), "Grouped-LOMCDS");
        assert_eq!(r.get("GOMCDS(naive)").unwrap().name(), "GOMCDS-naive");
        assert!(r.get("magic").is_none());
    }

    #[test]
    fn every_method_round_trips_through_the_registry() {
        for m in Method::ALL {
            let s = registry().get(m.name()).expect("method registered");
            assert_eq!(s.name(), m.name(), "name defined once, round-trips");
            assert_eq!(Method::parse(s.name()), Some(m));
        }
    }

    #[test]
    fn comparison_set_is_the_paper_set() {
        let names: Vec<_> = registry().comparison_set().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "SCDS",
                "LOMCDS",
                "GOMCDS",
                "Grouped-LOMCDS",
                "Grouped-GOMCDS"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate scheduler registration")]
    fn duplicate_registration_panics() {
        let mut r = SchedulerRegistry::new();
        r.register(Box::new(ScdsScheduler));
        r.register(Box::new(ScdsScheduler));
    }

    #[test]
    fn custom_registration_one_liner() {
        // The worked example from DESIGN.md: a strategy lands with one
        // impl + one registration line.
        struct Stay;
        impl Scheduler for Stay {
            fn name(&self) -> &'static str {
                "stay-put"
            }
            fn schedule(
                &self,
                ctx: &mut SchedContext,
                trace: &WindowedTrace,
            ) -> Result<Schedule, SchedError> {
                let m = ctx.grid().num_procs() as u32;
                let placement = (0..trace.num_data() as u32)
                    .map(|d| ProcId(d % m))
                    .collect();
                Ok(Schedule::static_placement(
                    ctx.grid(),
                    placement,
                    trace.num_windows(),
                ))
            }
        }
        let mut r = SchedulerRegistry::new();
        r.register(Box::new(Stay));
        let grid = Grid::new(2, 2);
        let trace = WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]; 5]);
        let mut ctx = SchedContext::new(&trace, MemoryPolicy::Unbounded);
        let s = r
            .get("STAY-PUT")
            .unwrap()
            .schedule(&mut ctx, &trace)
            .unwrap();
        assert_eq!(s.center(DataId(4), 0), ProcId(0));
        assert!(r.comparison_set().any(|s| s.name() == "stay-put"));
    }
}
