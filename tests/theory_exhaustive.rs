//! Exhaustive (not sampled) verification of the paper's theory on small
//! machines: every reference-string pair with bounded support is checked,
//! so within these bounds the theorems are *proved by enumeration*, not
//! just spot-checked.

use pim_array::grid::{Grid, ProcId};
use pim_sched::exhaustive::optimal_path_exhaustive;
use pim_sched::gomcds::{gomcds_path, Solver};
use pim_sched::theory::{closest_optimal_pair, theorem2_holds, theorem3_holds};
use pim_trace::window::{DataRefString, WindowRefs};

/// Every reference string on `grid` with at most `max_procs` distinct
/// referencing processors and counts in `1..=max_count`, including the
/// empty string.
fn all_ref_strings(grid: &Grid, max_procs: usize, max_count: u32) -> Vec<WindowRefs> {
    let m = grid.num_procs() as u32;
    let mut out = vec![WindowRefs::new()];
    // single-proc strings
    let mut singles = Vec::new();
    for p in 0..m {
        for c in 1..=max_count {
            singles.push((p, c));
        }
    }
    for &(p, c) in &singles {
        out.push(WindowRefs::from_pairs([(ProcId(p), c)]));
    }
    if max_procs >= 2 {
        for (i, &(p1, c1)) in singles.iter().enumerate() {
            for &(p2, c2) in &singles[i + 1..] {
                if p1 == p2 {
                    continue;
                }
                out.push(WindowRefs::from_pairs([(ProcId(p1), c1), (ProcId(p2), c2)]));
            }
        }
    }
    out
}

#[test]
fn theorem3_exhaustive_on_3x3() {
    // Pair-grouping cannot reduce cost, for every non-empty pair of
    // reference strings with ≤2 referencing processors and counts ≤2 on a
    // 3×3 array.
    let grid = Grid::new(3, 3);
    let strings = all_ref_strings(&grid, 2, 2);
    let non_empty: Vec<&WindowRefs> = strings.iter().filter(|r| !r.is_empty()).collect();
    let mut checked = 0u64;
    for &r0 in &non_empty {
        for &r1 in &non_empty {
            assert!(
                theorem3_holds(&grid, r0, r1),
                "Theorem 3 violated for {r0:?} / {r1:?}"
            );
            checked += 1;
        }
    }
    // 162 non-empty strings → 162² ordered pairs
    assert_eq!(checked, 26_244);
}

#[test]
fn theorem2_exhaustive_on_3x3() {
    // Strict monotonicity along every shortest path between the closest
    // pair of local optimal centers, for every pair with ≤2 referencing
    // processors on a 3×3 array.
    let grid = Grid::new(3, 3);
    let strings = all_ref_strings(&grid, 2, 2);
    let non_empty: Vec<&WindowRefs> = strings.iter().filter(|r| !r.is_empty()).collect();
    for &r0 in &non_empty {
        for &r1 in &non_empty {
            let (c0, c1) = closest_optimal_pair(&grid, r0, r1);
            assert!(
                theorem2_holds(&grid, r0, c0, c1),
                "Theorem 2 violated for {r0:?} toward {r1:?} ({c0} → {c1})"
            );
        }
    }
}

#[test]
fn gomcds_exhaustively_optimal_on_2x2() {
    // Every single-datum trace on a 2×2 array with 3 windows, each window
    // empty or a single reference with count ≤ 2: the DP must match brute
    // force on all of them.
    let grid = Grid::new(2, 2);
    let options = all_ref_strings(&grid, 1, 2); // 1 + 4·2 = 9 options
    assert_eq!(options.len(), 9);
    let mut checked = 0u64;
    for a in &options {
        for b in &options {
            for c in &options {
                let rs = DataRefString::new(vec![a.clone(), b.clone(), c.clone()]);
                let (_, ex) = optimal_path_exhaustive(&grid, &rs);
                let (_, go) = gomcds_path(&grid, &rs, Solver::DistanceTransform);
                assert_eq!(go, ex, "DP suboptimal on {a:?}/{b:?}/{c:?}");
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 729);
}

#[test]
fn scds_center_is_exhaustively_the_1_median_on_3x3() {
    // The separable cost-table center equals the argmin of a brute-force
    // scan for every reference string with ≤2 procs on a 3×3 array.
    let grid = Grid::new(3, 3);
    for refs in all_ref_strings(&grid, 2, 2) {
        let (fast, fast_cost) = pim_sched::cost::optimal_center(&grid, &refs);
        let mut best = (u64::MAX, ProcId(0));
        for p in grid.procs() {
            let c = pim_sched::cost::cost_at(&grid, &refs, p);
            if c < best.0 {
                best = (c, p);
            }
        }
        assert_eq!(fast_cost, best.0, "{refs:?}");
        assert_eq!(
            pim_sched::cost::cost_at(&grid, &refs, fast),
            best.0,
            "{refs:?}"
        );
    }
}
