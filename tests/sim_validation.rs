//! The simulator cross-check: hop-by-hop routed volume must equal the
//! analytic Manhattan-distance cost for every scheduler on every
//! benchmark, regardless of thread count.

use pim_array::grid::Grid;
use pim_par::Pool;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_sim::simulate;
use pim_workloads::{windowed, Benchmark};

#[test]
fn simulated_hops_equal_analytic_cost_everywhere() {
    let grid = Grid::new(4, 4);
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    for bench in Benchmark::paper_set() {
        let (trace, _) = windowed(bench, grid, 8, 2, 1998);
        for method in [
            Method::Scds,
            Method::Lomcds,
            Method::Gomcds,
            Method::GroupedLocal,
        ] {
            let s = schedule(method, &trace, memory);
            let analytic = s.evaluate(&trace);
            let report = simulate(&trace, &s, Pool::serial());
            assert_eq!(
                report.total_fetch_hop_volume(),
                analytic.reference,
                "{bench}/{method} fetch"
            );
            assert_eq!(
                report.total_move_hop_volume(),
                analytic.movement,
                "{bench}/{method} move"
            );
        }
    }
}

#[test]
fn parallel_simulation_matches_serial() {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::MatMulCode, grid, 16, 2, 1998);
    let s = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
    let serial = simulate(&trace, &s, Pool::serial());
    for threads in [2, 4, 8] {
        let par = simulate(&trace, &s, Pool::with_threads(threads));
        assert_eq!(serial, par, "threads={threads}");
    }
}

#[test]
fn better_schedules_relieve_the_network_too() {
    let grid = Grid::new(4, 4);
    let (trace, space) = windowed(Benchmark::MatMulCode, grid, 16, 2, 1998);
    let baseline = space.straightforward(&trace, pim_array::layout::Layout::RowWise);
    let gomcds = schedule(
        Method::Gomcds,
        &trace,
        MemoryPolicy::ScaledMinimum { factor: 2 },
    );

    let r_base = simulate(&trace, &baseline, Pool::auto());
    let r_go = simulate(&trace, &gomcds, Pool::auto());

    assert!(r_go.total_hop_volume() < r_base.total_hop_volume());
    // the completion-time lower bound should not get worse
    assert!(
        r_go.total_completion_time() <= r_base.total_completion_time(),
        "GOMCDS bound {} vs baseline {}",
        r_go.total_completion_time(),
        r_base.total_completion_time()
    );
}

#[test]
fn window_stats_sum_to_totals() {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::Lu, grid, 8, 2, 0);
    let s = schedule(Method::Lomcds, &trace, MemoryPolicy::Unbounded);
    let report = simulate(&trace, &s, Pool::auto());
    assert_eq!(report.windows().len(), trace.num_windows());
    let sum: u64 = report.windows().iter().map(|w| w.total_hop_volume()).sum();
    assert_eq!(sum, report.total_hop_volume());
    // link volumes also sum to total hop volume (each hop crosses one link)
    let link_sum: u64 = report.link_volume().iter().sum();
    assert_eq!(link_sum, report.total_hop_volume());
}
