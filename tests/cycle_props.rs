//! Property tests for the event-driven cycle simulator.
//!
//! The rewrite in `pim_sim::cycle` is pinned bit-identical to the
//! brute-force oracle it replaced — the same oracle discipline the cost
//! cache and grouping rework used — and its completion times are checked
//! against the analytic `window_completion_time` lower bound. Run by
//! `scripts/ci.sh` in release mode (the vendored proptest shim derives a
//! fixed per-test seed, so the corpus is reproducible).

use pim_array::grid::{Grid, ProcId};
use pim_sim::contention::window_completion_time;
use pim_sim::cycle::{run_window_oracle, CycleSim};
use pim_sim::message::{Message, MessageKind};
use pim_sim::WindowPrecedence;
use pim_trace::dag::{Task, TaskDag};
use pim_trace::ids::DataId;
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = Grid> {
    (1u32..=8, 1u32..=8).prop_map(|(w, h)| Grid::new(w, h))
}

/// Random message sets over the grid: arbitrary endpoint pairs (locals
/// included — they must be free), volumes 0..=9 (zero-volume must also be
/// free), message ids in declaration order as `window_messages` produces
/// them.
fn arb_window() -> impl Strategy<Value = (Grid, Vec<Message>)> {
    arb_grid().prop_flat_map(|grid| {
        let n = grid.num_procs() as u32;
        proptest::collection::vec((0..n, 0..n, 0u32..10), 0..24).prop_map(move |triples| {
            let msgs = triples
                .into_iter()
                .enumerate()
                .map(|(i, (src, dst, volume))| Message {
                    src: ProcId(src),
                    dst: ProcId(dst),
                    volume,
                    data: DataId(i as u32),
                    window: 0,
                    kind: if i % 3 == 0 {
                        MessageKind::Move
                    } else {
                        MessageKind::Fetch
                    },
                })
                .collect();
            (grid, msgs)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The event-driven simulator and the brute-force oracle agree bit for
    /// bit on every observable: completion, delivered flit-hops, and the
    /// peak number of flits in flight.
    #[test]
    fn event_driven_matches_oracle((grid, msgs) in arb_window()) {
        let event = CycleSim::new(grid).run_window(&msgs).expect("event sim");
        let oracle = run_window_oracle(&grid, &msgs).expect("oracle sim");
        prop_assert_eq!(event, oracle, "event-driven diverged from the oracle");
    }

    /// Reusing one workspace across windows never changes a result.
    #[test]
    fn workspace_reuse_matches_one_shot(
        (grid, msgs) in arb_window(),
        rounds in 1usize..4,
    ) {
        let fresh = CycleSim::new(grid).run_window(&msgs).expect("fresh sim");
        let mut sim = CycleSim::new(grid);
        for _ in 0..rounds {
            let reused = sim.run_window(&msgs).expect("reused sim");
            prop_assert_eq!(reused, fresh, "workspace reuse leaked state");
        }
    }

    /// Simulated completion can never beat the analytic bandwidth/latency
    /// lower bound, and delivered flit-hops equal the analytic hop-volume.
    #[test]
    fn completion_dominates_analytic_bound((grid, msgs) in arb_window()) {
        let r = CycleSim::new(grid).run_window(&msgs).expect("event sim");
        let bound = window_completion_time(&grid, &msgs);
        prop_assert!(
            r.completion_cycle >= bound,
            "simulated {} < analytic bound {}", r.completion_cycle, bound
        );
        let hop_volume: u64 = msgs
            .iter()
            .filter(|m| !m.is_local())
            .map(|m| grid.dist(m.src, m.dst) * m.volume as u64)
            .sum();
        prop_assert_eq!(r.flit_hops, hop_volume);
    }

    /// Precedence-gated release with an edge-free DAG injects everything
    /// at cycle 0 — pinned bit-identical to the ungated simulator on every
    /// observable (the no-DAG conformance of the gating layer).
    #[test]
    fn edge_free_gating_matches_ungated((grid, msgs) in arb_window()) {
        let plain = CycleSim::new(grid).run_window(&msgs).expect("plain sim");
        let tasks: Vec<Task> = msgs
            .iter()
            .map(|m| Task { window: 0, data: vec![m.data], wcet: 1 })
            .collect();
        let dag = TaskDag::new(1, tasks, vec![]).expect("edge-free dag");
        let prec = WindowPrecedence::build(&dag, 0, &msgs).expect("one task per message");
        let gated = CycleSim::new(grid)
            .run_window_gated(&msgs, Some(&prec))
            .expect("gated sim");
        prop_assert_eq!(gated, plain, "edge-free gating diverged from the ungated sim");
    }

    /// Gating under a full serial chain can only delay injection: the
    /// delivered flit-hops are conserved and completion never improves on
    /// the all-at-window-start run.
    #[test]
    fn chain_gating_conserves_hops_and_never_speeds_up((grid, msgs) in arb_window()) {
        let plain = CycleSim::new(grid).run_window(&msgs).expect("plain sim");
        let tasks: Vec<Task> = msgs
            .iter()
            .map(|m| Task { window: 0, data: vec![m.data], wcet: 1 })
            .collect();
        let edges = (1..tasks.len() as u32).map(|t| (t - 1, t)).collect();
        let dag = TaskDag::new(1, tasks, edges).expect("chain dag");
        let prec = WindowPrecedence::build(&dag, 0, &msgs).expect("one task per message");
        let gated = CycleSim::new(grid)
            .run_window_gated(&msgs, Some(&prec))
            .expect("gated sim");
        prop_assert_eq!(gated.flit_hops, plain.flit_hops, "gating lost flits");
        prop_assert!(
            gated.peak_in_flight <= plain.peak_in_flight,
            "serializing release cannot raise the in-flight peak"
        );
        prop_assert!(
            gated.completion_cycle >= plain.completion_cycle,
            "gated {} beat ungated {}", gated.completion_cycle, plain.completion_cycle
        );
    }
}
