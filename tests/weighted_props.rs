//! Property tests for the volume-weighted cost model: weighted GOMCDS
//! optimality, weight monotonicity, per-datum volumes, and K-copy
//! dominance — on random traces.

#![allow(clippy::needless_range_loop)]

use pim_array::grid::{Grid, ProcId};
use pim_array::memory::MemorySpec;
use pim_sched::gomcds::{gomcds_path_weighted, gomcds_schedule_volumes, Solver};
use pim_sched::kcopy::kcopy_schedule;
use pim_sched::{schedule, MemoryPolicy, Method, Schedule};
use pim_trace::ids::DataId;
use pim_trace::window::{WindowRefs, WindowedTrace};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = WindowedTrace> {
    (2u32..=5, 2u32..=5).prop_flat_map(|(w, h)| {
        let grid = Grid::new(w, h);
        let m = grid.num_procs() as u32;
        (1usize..=3, 1usize..=5).prop_flat_map(move |(nd, nw)| {
            proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec((0..m, 1u32..6), 0..4),
                    nw..=nw,
                ),
                nd..=nd,
            )
            .prop_map(move |data| {
                WindowedTrace::from_parts(
                    grid,
                    data.into_iter()
                        .map(|ws| {
                            ws.into_iter()
                                .map(|pairs| {
                                    WindowRefs::from_pairs(
                                        pairs.into_iter().map(|(p, n)| (ProcId(p), n)),
                                    )
                                })
                                .collect()
                        })
                        .collect(),
                )
            })
        })
    })
}

fn weighted_gomcds(trace: &WindowedTrace, weight: u64) -> Schedule {
    let grid = trace.grid();
    let centers = (0..trace.num_data())
        .map(|d| {
            gomcds_path_weighted(
                &grid,
                trace.refs(DataId(d as u32)),
                Solver::DistanceTransform,
                weight,
            )
            .0
        })
        .collect();
    Schedule::new(grid, centers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn weighted_gomcds_is_optimal_under_its_weight(
        trace in arb_trace(),
        weight in 1u64..20,
    ) {
        let go = weighted_gomcds(&trace, weight);
        let go_cost = go.evaluate_weighted(&trace, weight).total();
        for other in [Method::Scds, Method::Lomcds, Method::Gomcds] {
            let s = schedule(other, &trace, MemoryPolicy::Unbounded);
            let cost = s.evaluate_weighted(&trace, weight).total();
            prop_assert!(go_cost <= cost, "weight {weight}: {go_cost} > {other} {cost}");
        }
    }

    #[test]
    fn weighted_path_cost_matches_schedule_eval(
        trace in arb_trace(),
        weight in 1u64..20,
    ) {
        let grid = trace.grid();
        let mut total = 0u64;
        for d in 0..trace.num_data() {
            total += gomcds_path_weighted(
                &grid,
                trace.refs(DataId(d as u32)),
                Solver::DistanceTransform,
                weight,
            ).1;
        }
        let s = weighted_gomcds(&trace, weight);
        prop_assert_eq!(s.evaluate_weighted(&trace, weight).total(), total);
    }

    #[test]
    fn optimal_cost_is_monotone_in_weight(trace in arb_trace()) {
        let mut prev = 0u64;
        for weight in [1u64, 2, 4, 8, 64] {
            let cost = weighted_gomcds(&trace, weight)
                .evaluate_weighted(&trace, weight)
                .total();
            prop_assert!(cost >= prev, "weight {weight}: {cost} < {prev}");
            prev = cost;
        }
    }

    #[test]
    fn huge_weight_freezes_movement(trace in arb_trace()) {
        let big = 1_000_000u64;
        let s = weighted_gomcds(&trace, big);
        // total volume bounds any possible reference saving, so no move
        // can ever pay for itself at this weight
        prop_assert_eq!(s.num_moves(), 0);
    }

    #[test]
    fn volumes_eval_decomposes(trace in arb_trace(), seed in 0u64..1000) {
        let nd = trace.num_data();
        let volumes: Vec<u64> = (0..nd as u64).map(|d| (seed + d) % 7 + 1).collect();
        let s = schedule(Method::Lomcds, &trace, MemoryPolicy::Unbounded);
        let whole = s.evaluate_volumes(&trace, &volumes);
        let mut acc = pim_sched::CostBreakdown::default();
        for d in 0..nd {
            acc.add(s.evaluate_data_weighted(&trace, DataId(d as u32), volumes[d]));
        }
        prop_assert_eq!(whole, acc);
    }

    #[test]
    fn volume_gomcds_beats_unit_gomcds_under_volumes(
        trace in arb_trace(),
        seed in 0u64..1000,
    ) {
        let nd = trace.num_data();
        let volumes: Vec<u64> = (0..nd as u64).map(|d| (seed + 3 * d) % 9 + 1).collect();
        let tuned = gomcds_schedule_volumes(&trace, &volumes)
            .evaluate_volumes(&trace, &volumes)
            .total();
        let unit = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded)
            .evaluate_volumes(&trace, &volumes)
            .total();
        prop_assert!(tuned <= unit, "{tuned} > {unit}");
    }

    #[test]
    fn kcopy_costs_non_increasing(trace in arb_trace()) {
        let spec = MemorySpec::unbounded();
        let mut prev = u64::MAX;
        for k in 1..=3 {
            let cost = kcopy_schedule(&trace, spec, k).evaluate(&trace).total();
            prop_assert!(cost <= prev, "k={k}: {cost} > {prev}");
            prev = cost;
        }
        // k = 1 must equal plain GOMCDS
        let k1 = kcopy_schedule(&trace, spec, 1).evaluate(&trace).total();
        let go = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace)
            .total();
        prop_assert_eq!(k1, go);
    }
}
