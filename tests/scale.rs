//! Larger-scale smoke tests: the full pipeline on an 8×8 array with
//! 32×32 data (1024–2048 data items, ~60 windows), exercising the paths
//! whose complexity actually matters (distance-transform GOMCDS, parallel
//! scheduling, simulator) at a size where the naive formulations would
//! crawl.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_par::Pool;
use pim_sched::{schedule, schedule_parallel, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

#[test]
fn big_lu_end_to_end() {
    let grid = Grid::new(8, 8);
    let (trace, space) = windowed(Benchmark::Lu, grid, 32, 2, 0);
    assert_eq!(trace.num_data(), 1024);
    assert!(trace.num_windows() >= 30);

    let sf = space
        .straightforward(&trace, Layout::RowWise)
        .evaluate(&trace)
        .total();
    let policy = MemoryPolicy::ScaledMinimum { factor: 2 };
    let go = schedule(Method::Gomcds, &trace, policy);
    let cost = go.evaluate(&trace).total();
    assert!(cost < sf, "GOMCDS {cost} must beat S.F. {sf} at scale");
    assert!(go.max_occupancy() <= policy.resolve(&trace).capacity_per_proc);

    // lower-bound sandwich also holds at scale
    let lb = pim_sched::bounds::reference_lower_bound(&trace);
    assert!(lb <= cost);
}

#[test]
fn big_parallel_matches_sequential() {
    let grid = Grid::new(8, 8);
    let (trace, _) = windowed(Benchmark::MatMul, grid, 24, 2, 0);
    let seq = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
    let par = schedule_parallel(Method::Gomcds, &trace, Pool::auto());
    assert_eq!(seq, par);
}

#[test]
fn big_simulation_agrees_with_analytic() {
    let grid = Grid::new(8, 8);
    let (trace, _) = windowed(Benchmark::MatMulCode, grid, 24, 2, 1998);
    let s = schedule(
        Method::Lomcds,
        &trace,
        MemoryPolicy::ScaledMinimum { factor: 2 },
    );
    let report = pim_sim::simulate(&trace, &s, Pool::auto());
    assert_eq!(report.total_hop_volume(), s.evaluate(&trace).total());
}

/// Million-scale id audit: datum indices beyond the 16-bit boundary round
/// trip through the flat pipeline — build, schedule, evaluate — with no
/// truncation. 70k data exceeds `u16::MAX`; the typed conversion guards
/// the 32-bit boundary.
#[test]
fn datum_ids_survive_past_65k() {
    use pim_trace::ids::DataId;

    // The checked conversion accepts the 32-bit range and rejects overflow.
    assert_eq!(DataId::try_from_index(70_000).unwrap(), DataId(70_000));
    assert_eq!(
        DataId::try_from_index(u32::MAX as usize).unwrap(),
        DataId(u32::MAX)
    );
    assert!(DataId::try_from_index(u32::MAX as usize + 1).is_err());

    let grid = Grid::new(16, 16);
    const ND: usize = 70_000;
    let flat = pim_bench::scale::synthetic_flat(grid, 8, ND, 7);
    assert_eq!(flat.num_data(), ND);
    // The last datum (index > 65535) kept its own references.
    assert!(!flat.span(DataId(ND as u32 - 1)).is_empty());

    let s = pim_sched::flat_lomcds(&flat, MemoryPolicy::Unbounded, Pool::auto())
        .expect("unbounded cannot exhaust");
    assert_eq!(s.num_data(), ND);
    let cost = pim_sched::flat_total_cost(&flat, &s);
    assert!(cost.total() > 0);
}

#[test]
fn big_grouping_pipeline_is_sound() {
    let grid = Grid::new(8, 8);
    let (trace, _) = windowed(Benchmark::CodeReverse, grid, 24, 1, 1998);
    let policy = MemoryPolicy::ScaledMinimum { factor: 2 };
    let plain = schedule(Method::Lomcds, &trace, policy)
        .evaluate(&trace)
        .total();
    let grouped = schedule(Method::GroupedLocal, &trace, policy)
        .evaluate(&trace)
        .total();
    // the finest windows make per-window movement expensive; grouping
    // should recover a meaningful share
    assert!(
        grouped <= plain,
        "grouped {grouped} must not exceed plain LOMCDS {plain}"
    );
}
