//! Property tests for the grouping machinery and the paper's theory
//! (Lemma 1, Theorems 2 and 3).

use pim_array::grid::{Grid, ProcId};
use pim_array::line::Line;
use pim_sched::grouping::{
    cost_of_grouping, greedy_grouping, greedy_grouping_cached, greedy_grouping_oracle,
    optimal_grouping, optimal_grouping_cached, optimal_grouping_oracle, GroupMethod,
};
use pim_sched::theory::{closest_optimal_pair, lemma1_holds, theorem2_holds, theorem3_holds};
use pim_sched::{DatumCostCache, Workspace};
use pim_trace::window::{DataRefString, WindowRefs};
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = Grid> {
    (2u32..=5, 2u32..=5).prop_map(|(w, h)| Grid::new(w, h))
}

fn arb_refs(grid: Grid, allow_empty: bool) -> impl Strategy<Value = WindowRefs> {
    let m = grid.num_procs() as u32;
    let lo = if allow_empty { 0 } else { 1 };
    proptest::collection::vec((0..m, 1u32..5), lo..5).prop_map(move |pairs| {
        WindowRefs::from_pairs(pairs.into_iter().map(|(p, n)| (ProcId(p), n)))
    })
}

fn arb_ref_string() -> impl Strategy<Value = (Grid, DataRefString)> {
    arb_grid().prop_flat_map(|grid| {
        proptest::collection::vec(arb_refs(grid, true), 1..8)
            .prop_map(move |ws| (grid, DataRefString::new(ws)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn greedy_groups_partition_and_never_regress((grid, rs) in arb_ref_string()) {
        for method in [GroupMethod::LocalCenters, GroupMethod::GomcdsCenters] {
            let groups = greedy_grouping(&grid, &rs, method);
            // partition structure
            let mut expect = 0usize;
            for g in &groups {
                prop_assert_eq!(g.start, expect);
                prop_assert!(g.end > g.start);
                expect = g.end;
            }
            prop_assert_eq!(expect, rs.num_windows());
            // never worse than no grouping
            let singles: Vec<_> = (0..rs.num_windows()).map(|i| i..i + 1).collect();
            prop_assert!(
                cost_of_grouping(&grid, &rs, &groups, method)
                    <= cost_of_grouping(&grid, &rs, &singles, method)
            );
        }
    }

    #[test]
    fn optimal_grouping_is_a_lower_bound((grid, rs) in arb_ref_string()) {
        let greedy = greedy_grouping(&grid, &rs, GroupMethod::LocalCenters);
        let greedy_cost = cost_of_grouping(&grid, &rs, &greedy, GroupMethod::LocalCenters);
        let (opt_groups, opt_cost) = optimal_grouping(&grid, &rs);
        prop_assert!(opt_cost <= greedy_cost, "optimal {opt_cost} > greedy {greedy_cost}");
        prop_assert_eq!(
            cost_of_grouping(&grid, &rs, &opt_groups, GroupMethod::LocalCenters),
            opt_cost
        );
        // exhaustively verify optimality on short strings
        if rs.num_windows() <= 5 {
            let n = rs.num_windows();
            for mask in 0u32..(1 << (n - 1)) {
                let mut groups = Vec::new();
                let mut start = 0;
                for i in 0..n - 1 {
                    if mask & (1 << i) != 0 {
                        groups.push(start..i + 1);
                        start = i + 1;
                    }
                }
                groups.push(start..n);
                let c = cost_of_grouping(&grid, &rs, &groups, GroupMethod::LocalCenters);
                prop_assert!(
                    opt_cost <= c,
                    "optimal {opt_cost} beaten by {groups:?} at {c}"
                );
            }
        }
    }

    /// The incremental O(n)-evaluation greedy is pinned bit-identical to
    /// the literal O(n²) re-evaluation oracle for both placement methods:
    /// same cut positions, not merely the same cost.
    #[test]
    fn incremental_greedy_matches_oracle((grid, rs) in arb_ref_string()) {
        let cache = DatumCostCache::build(&grid, &rs);
        let mut ws = Workspace::new();
        for method in [GroupMethod::LocalCenters, GroupMethod::GomcdsCenters] {
            let oracle = greedy_grouping_oracle(&grid, &rs, method);
            let incremental = greedy_grouping_cached(&grid, &cache, method, &mut ws);
            prop_assert_eq!(
                &incremental, &oracle,
                "incremental greedy diverged from oracle under {:?}", method
            );
        }
    }

    /// The O(t²) grouping DP is pinned bit-identical to the O(t³) oracle:
    /// same partition (lowest-index tie-breaking preserved) and same cost.
    #[test]
    fn quadratic_grouping_dp_matches_oracle((grid, rs) in arb_ref_string()) {
        let cache = DatumCostCache::build(&grid, &rs);
        let mut ws = Workspace::new();
        let (oracle_groups, oracle_cost) = optimal_grouping_oracle(&grid, &rs);
        let (fast_groups, fast_cost) = optimal_grouping_cached(&grid, &cache, &mut ws);
        prop_assert_eq!(fast_cost, oracle_cost);
        prop_assert_eq!(&fast_groups, &oracle_groups, "O(t^2) DP picked a different partition");
    }

    #[test]
    fn theorem3_pair_grouping_never_gains(
        grid in arb_grid(),
        seed in 0u64..10_000,
    ) {
        // two non-empty windows from a seeded generator
        let m = grid.num_procs() as u64;
        let mk = |s: u64| {
            let k = s % 3 + 1;
            WindowRefs::from_pairs((0..k).map(|i| {
                (ProcId(((s.wrapping_mul(31).wrapping_add(i * 7)) % m) as u32),
                 ((s >> (i + 1)) % 4 + 1) as u32)
            }))
        };
        let r0 = mk(seed);
        let r1 = mk(seed.wrapping_mul(97).wrapping_add(13));
        prop_assert!(theorem3_holds(&grid, &r0, &r1));
    }

    #[test]
    fn theorem2_monotone_from_closest_pair(
        grid in arb_grid(),
        seed in 0u64..10_000,
    ) {
        let m = grid.num_procs() as u64;
        let mk = |s: u64| {
            let k = s % 3 + 1;
            WindowRefs::from_pairs((0..k).map(|i| {
                (ProcId(((s.wrapping_mul(17).wrapping_add(i * 11)) % m) as u32),
                 ((s >> i) % 3 + 1) as u32)
            }))
        };
        let r0 = mk(seed);
        let r1 = mk(seed.wrapping_mul(131).wrapping_add(7));
        let (c0, c1) = closest_optimal_pair(&grid, &r0, &r1);
        prop_assert!(
            theorem2_holds(&grid, &r0, c0, c1),
            "not monotone from {c0} to {c1}"
        );
    }

    #[test]
    fn lemma1_on_random_lines(
        len in 2u32..20,
        seed in 0u64..10_000,
    ) {
        let line = Line::new(len);
        let k = seed % 4 + 1;
        let refs: Vec<(u32, u32)> = (0..k)
            .map(|i| {
                ((seed.wrapping_mul(13).wrapping_add(i * 5) % len as u64) as u32,
                 ((seed >> i) % 4 + 1) as u32)
            })
            .collect();
        let target = (seed.wrapping_mul(29) % len as u64) as u32;
        let centers = line.optimal_centers(&refs);
        // pick the optimal center closest to the target
        let c0 = *centers
            .iter()
            .min_by_key(|&&c| (c.abs_diff(target), c))
            .unwrap();
        prop_assert!(
            lemma1_holds(&line, &refs, c0, target),
            "cost not strictly monotone from {c0} toward {target} (refs {refs:?})"
        );
    }
}
