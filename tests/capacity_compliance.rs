//! Memory-capacity compliance: every scheduler must respect the per-
//! processor, per-window slot limit in every window, for every policy —
//! and when a policy cannot hold the working set at all, every registered
//! scheduler must report the typed [`SchedError::CapacityExhausted`]
//! through the `Scheduler` trait instead of panicking.

use pim_array::grid::Grid;
use pim_par::Pool;
use pim_sched::{schedule, MemoryPolicy, Method, Run, SchedError};
use pim_workloads::{windowed, Benchmark};

#[test]
fn occupancy_never_exceeds_capacity() {
    let grid = Grid::new(4, 4);
    for bench in [Benchmark::Lu, Benchmark::MatMulCode, Benchmark::CodeReverse] {
        let (trace, _) = windowed(bench, grid, 8, 2, 1998);
        for factor in [1u32, 2, 3] {
            let policy = MemoryPolicy::ScaledMinimum { factor };
            let cap = policy.resolve(&trace).capacity_per_proc;
            for method in Method::ALL {
                let s = schedule(method, &trace, policy);
                assert!(
                    s.max_occupancy() <= cap,
                    "{bench}/{method} factor {factor}: occupancy {} > cap {cap}",
                    s.max_occupancy()
                );
            }
        }
    }
}

#[test]
fn tightest_memory_forces_perfect_balance() {
    // factor 1 and data divisible by processors: every processor must hold
    // exactly data/procs items in every window.
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::Lu, grid, 8, 2, 0); // 64 data, 16 procs
    let policy = MemoryPolicy::ScaledMinimum { factor: 1 };
    assert_eq!(policy.resolve(&trace).capacity_per_proc, 4);
    for method in [Method::Scds, Method::Lomcds, Method::Gomcds] {
        let s = schedule(method, &trace, policy);
        for (w, occ) in s.occupancy().iter().enumerate() {
            assert!(
                occ.iter().all(|&n| n == 4),
                "{method} window {w}: occupancy {occ:?} not perfectly balanced"
            );
        }
    }
}

#[test]
fn looser_memory_never_hurts() {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::MatMulCode, grid, 8, 2, 1998);
    for method in [Method::Scds, Method::Lomcds, Method::Gomcds] {
        let mut prev = u64::MAX;
        for factor in [1u32, 2, 4] {
            let cost = schedule(method, &trace, MemoryPolicy::ScaledMinimum { factor })
                .evaluate(&trace)
                .total();
            assert!(
                cost <= prev,
                "{method}: cost rose from {prev} to {cost} when memory loosened to {factor}x"
            );
            prev = cost;
        }
        let unbounded = schedule(method, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace)
            .total();
        assert!(
            unbounded <= prev,
            "{method}: unbounded {unbounded} > 4x {prev}"
        );
    }
}

#[test]
#[should_panic(expected = "cannot hold")]
fn infeasible_policy_panics_with_clear_message() {
    // The legacy `schedule` shim keeps the seed's panicking contract; the
    // typed-error path is pinned by the exhaustion matrix below.
    let grid = Grid::new(2, 2);
    let (trace, _) = windowed(Benchmark::Lu, grid, 8, 2, 0); // 64 data, 4 procs
    let _ = schedule(Method::Gomcds, &trace, MemoryPolicy::Capacity(2)); // 8 slots < 64
}

/// Capacity exhaustion is a *typed error*, never a panic: on a grid whose
/// total memory cannot hold the working set, every registered scheduler ×
/// every bounded policy × every execution wrapper (sequential cached,
/// pre-cache reference, two-phase parallel) returns
/// [`SchedError::CapacityExhausted`], and its message names the failure.
#[test]
fn capacity_exhaustion_is_a_typed_error_for_every_scheduler() {
    let grid = Grid::new(2, 2);
    let (trace, _) = windowed(Benchmark::Lu, grid, 8, 2, 0); // 64 data, 4 procs
    assert!(
        trace.num_data() > 4 * 15,
        "trace must overflow every policy"
    );
    // 4, 8 and 60 slots — all short of the 64 data items.
    for policy in [
        MemoryPolicy::Capacity(1),
        MemoryPolicy::Capacity(2),
        MemoryPolicy::Capacity(15),
    ] {
        for scheduler in pim_sched::registry().iter() {
            let name = scheduler.name();
            for (mode, result) in [
                ("cached", Run::new(&trace).policy(policy).run(scheduler)),
                (
                    "uncached",
                    Run::new(&trace).policy(policy).cached(false).run(scheduler),
                ),
                (
                    "parallel",
                    Run::new(&trace)
                        .policy(policy)
                        .parallel(Pool::with_threads(3))
                        .run(scheduler),
                ),
            ] {
                match result {
                    Err(e @ SchedError::CapacityExhausted { .. }) => assert!(
                        e.to_string().contains("cannot hold"),
                        "{name}/{mode}: error must name the failure, got {e}"
                    ),
                    Err(other) => panic!("{name}/{mode}: wrong error kind {other}"),
                    Ok(_) => {
                        panic!("{name}/{mode} under {policy:?} must fail, not schedule")
                    }
                }
            }
        }
    }
}
