//! Bit-identity of the cached scheduling path.
//!
//! The shared cost-table cache ([`pim_sched::CostCache`]), the reusable
//! [`pim_sched::Workspace`], and the persistent `pim-par` worker pool are
//! pure performance work: every schedule they produce must be *bit
//! identical* to the pre-cache reference implementations (`*_uncached`)
//! across random traces, degenerate and non-square grids, and every memory
//! policy. These properties are what licenses deleting nothing: the old
//! code survives as the oracle.
//!
//! Since the `Scheduler`-trait refactor this doubles as the registry-wide
//! conformance suite: `registry_conformance_across_wrappers` drives every
//! *registered* strategy — including `baseline`/`online`/`kcopy`/
//! `replicate`, which have no `Method` variant — through the cached,
//! uncached, and parallel execution wrappers of [`pim_sched::Run`] and
//! requires all three to agree exactly. The same discipline covers the
//! observability layer: `metrics_never_change_a_schedule_bit` proves that
//! attaching an enabled [`pim_sched::Metrics`] sink is pure observation.

use pim_array::grid::{Grid, ProcId};
use pim_par::Pool;
use pim_sched::pipeline::{schedule_cached, schedule_uncached};
use pim_sched::{schedule, schedule_parallel, CostCache, MemoryPolicy, Method, Run, Workspace};
use pim_trace::window::{WindowRefs, WindowedTrace};
use proptest::prelude::*;

/// Grids the cache must handle: degenerate 1×n row, the paper's square
/// array, a non-square 7×3, and random small shapes.
fn arb_grid() -> impl Strategy<Value = Grid> {
    prop_oneof![
        Just(Grid::new(1, 7)),
        Just(Grid::new(7, 1)),
        Just(Grid::new(4, 4)),
        Just(Grid::new(7, 3)),
        (1u32..=6, 1u32..=6).prop_map(|(w, h)| Grid::new(w, h)),
    ]
}

/// Random reference string over a grid (possibly empty).
fn arb_refs(grid: Grid) -> impl Strategy<Value = WindowRefs> {
    let m = grid.num_procs() as u32;
    proptest::collection::vec((0..m, 1u32..6), 0..6).prop_map(move |pairs| {
        WindowRefs::from_pairs(pairs.into_iter().map(|(p, n)| (ProcId(p), n)))
    })
}

/// Random windowed trace: up to 4 data × up to 6 windows.
fn arb_trace() -> impl Strategy<Value = WindowedTrace> {
    arb_grid().prop_flat_map(|grid| {
        (1usize..=4, 1usize..=6).prop_flat_map(move |(nd, nw)| {
            proptest::collection::vec(proptest::collection::vec(arb_refs(grid), nw..=nw), nd..=nd)
                .prop_map(move |per_data| WindowedTrace::from_parts(grid, per_data))
        })
    })
}

/// Memory policies to cross with every method: unconstrained, the paper's
/// doubled balanced minimum, and the tightest uniform capacity that still
/// fits every datum.
fn policies(trace: &WindowedTrace) -> [MemoryPolicy; 3] {
    let tight = (trace.num_data() as u32).div_ceil(trace.grid().num_procs() as u32);
    [
        MemoryPolicy::Unbounded,
        MemoryPolicy::ScaledMinimum { factor: 2 },
        MemoryPolicy::Capacity(tight.max(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: for every method and policy, the cached
    /// dispatch produces exactly the schedule the uncached reference does —
    /// same centers, not just same cost.
    #[test]
    fn cached_schedules_bit_identical_to_uncached(trace in arb_trace()) {
        for method in Method::ALL {
            for policy in policies(&trace) {
                let cached = schedule(method, &trace, policy);
                let reference = schedule_uncached(method, &trace, policy);
                prop_assert_eq!(
                    &cached, &reference,
                    "{} under {:?} diverged from reference", method, policy
                );
            }
        }
    }

    /// A dirty workspace must not leak state between runs: scheduling a
    /// second unrelated trace through the same cache+workspace pair gives
    /// the same result as a fresh workspace.
    #[test]
    fn workspace_reuse_does_not_leak_state(a in arb_trace(), b in arb_trace()) {
        let mut ws = Workspace::new();
        let cache_a = CostCache::build(&a);
        let cache_b = CostCache::build(&b);
        for method in Method::ALL {
            // warm (and dirty) the workspace on trace `a`...
            let _ = schedule_cached(method, &a, MemoryPolicy::Unbounded, &cache_a, &mut ws);
            // ...then `b` through the dirty workspace must match a cold run
            let warm = schedule_cached(method, &b, MemoryPolicy::Unbounded, &cache_b, &mut ws);
            let cold = schedule(method, &b, MemoryPolicy::Unbounded);
            prop_assert_eq!(&warm, &cold, "{} leaked workspace state", method);
        }
    }

    /// Persistent-pool determinism: any pool width produces the serial
    /// schedule, for every method (index-ordered output contract).
    #[test]
    fn persistent_pool_matches_serial(trace in arb_trace(), threads in 2usize..=8) {
        for method in Method::ALL {
            let serial = schedule_parallel(method, &trace, Pool::serial());
            let parallel = schedule_parallel(method, &trace, Pool::with_threads(threads));
            prop_assert_eq!(
                &serial, &parallel,
                "{} with {} threads diverged from serial", method, threads
            );
            // and the parallel (unconstrained) path agrees with `schedule`
            let seq = schedule(method, &trace, MemoryPolicy::Unbounded);
            prop_assert_eq!(&seq, &parallel, "{} parallel != sequential", method);
        }
    }

    /// Registry-wide conformance: every registered scheduler × every memory
    /// policy is bit-identical across the plain (cached), uncached, and
    /// parallel execution wrappers. For bounded policies the parallel
    /// wrapper runs the two-phase scheme (parallel per-datum computation,
    /// sequential capacity replay in datum order), so this pins that the
    /// two-phase replay reproduces the sequential capacity resolution
    /// exactly — not merely the same cost.
    #[test]
    fn registry_conformance_across_wrappers(trace in arb_trace(), threads in 2usize..=8) {
        for scheduler in pim_sched::registry().iter() {
            for policy in policies(&trace) {
                let cached = Run::new(&trace).policy(policy).run(scheduler);
                let uncached = Run::new(&trace).policy(policy).cached(false).run(scheduler);
                prop_assert_eq!(
                    &cached, &uncached,
                    "{} under {:?}: cached != uncached", scheduler.name(), policy
                );
                let parallel = Run::new(&trace)
                    .policy(policy)
                    .parallel(Pool::with_threads(threads))
                    .run(scheduler);
                prop_assert_eq!(
                    &cached, &parallel,
                    "{} under {:?}: parallel != cached", scheduler.name(), policy
                );
            }
        }
    }

    /// Metrics collection is pure observation: for every registered
    /// scheduler × policy × {sequential, parallel} wrapper, a run with an
    /// enabled metrics sink produces exactly the schedule the metrics-free
    /// run does — same centers, not just same cost.
    #[test]
    fn metrics_never_change_a_schedule_bit(trace in arb_trace(), threads in 2usize..=4) {
        for scheduler in pim_sched::registry().iter() {
            for policy in policies(&trace) {
                let plain = Run::new(&trace).policy(policy).run(scheduler);
                let metrics = pim_sched::Metrics::enabled();
                let observed = Run::new(&trace)
                    .policy(policy)
                    .metrics(metrics.clone())
                    .run(scheduler);
                prop_assert_eq!(
                    &plain, &observed,
                    "{} under {:?}: metrics changed the sequential schedule",
                    scheduler.name(), policy
                );
                let par_metrics = pim_sched::Metrics::enabled();
                let par_observed = Run::new(&trace)
                    .policy(policy)
                    .parallel(Pool::with_threads(threads))
                    .metrics(par_metrics.clone())
                    .run(scheduler);
                prop_assert_eq!(
                    &plain, &par_observed,
                    "{} under {:?}: metrics changed the parallel schedule",
                    scheduler.name(), policy
                );
                // the observed runs actually recorded something observable
                prop_assert!(metrics.report().enabled);
                prop_assert!(par_metrics.report().enabled);
            }
        }
    }

    /// The pool helpers themselves: per-worker state plus repeated reuse of
    /// the long-lived workers never change the output.
    #[test]
    fn parallel_map_with_deterministic(items in proptest::collection::vec(0u64..1000, 0..200)) {
        let expect: Vec<u64> = items.iter().enumerate()
            .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
            .collect();
        for pool in [Pool::serial(), Pool::with_threads(4), Pool::with_threads(8)] {
            let got = pim_par::parallel_map_with(
                pool,
                &items,
                Vec::<u64>::new,
                |scratch, i, &x| {
                    scratch.push(x); // per-worker state, grows across items
                    x.wrapping_mul(31).wrapping_add(i as u64)
                },
            );
            prop_assert_eq!(&got, &expect);
        }
    }
}
