//! Bit-identity of the cached scheduling path.
//!
//! The shared cost-table cache ([`pim_sched::CostCache`]), the reusable
//! [`pim_sched::Workspace`], and the persistent `pim-par` worker pool are
//! pure performance work: every schedule they produce must be *bit
//! identical* to the pre-cache reference implementations (`*_uncached`)
//! across random traces, degenerate and non-square grids, and every memory
//! policy. These properties are what licenses deleting nothing: the old
//! code survives as the oracle.
//!
//! Since the `Scheduler`-trait refactor this doubles as the registry-wide
//! conformance suite: `registry_conformance_across_wrappers` drives every
//! *registered* strategy — including `baseline`/`online`/`kcopy`/
//! `replicate`, which have no `Method` variant — through the cached,
//! uncached, and parallel execution wrappers of [`pim_sched::Run`] and
//! requires all three to agree exactly. The same discipline covers the
//! observability layer: `metrics_never_change_a_schedule_bit` proves that
//! attaching an enabled [`pim_sched::Metrics`] sink is pure observation.

use pim_array::grid::{Grid, ProcId};
use pim_par::Pool;
use pim_sched::pipeline::{schedule_cached, schedule_uncached};
use pim_sched::{
    flat_gomcds, flat_lomcds, flat_scds, flat_total_cost, schedule, schedule_parallel, CostCache,
    MemoryPolicy, Method, Run, SchedContext, Workspace,
};
use pim_trace::flat::FlatTrace;
use pim_trace::window::{WindowRefs, WindowedTrace};
use proptest::prelude::*;

/// Grids the cache must handle: degenerate 1×n row, the paper's square
/// array, a non-square 7×3, and random small shapes.
fn arb_grid() -> impl Strategy<Value = Grid> {
    prop_oneof![
        Just(Grid::new(1, 7)),
        Just(Grid::new(7, 1)),
        Just(Grid::new(4, 4)),
        Just(Grid::new(7, 3)),
        (1u32..=6, 1u32..=6).prop_map(|(w, h)| Grid::new(w, h)),
    ]
}

/// Random reference string over a grid (possibly empty).
fn arb_refs(grid: Grid) -> impl Strategy<Value = WindowRefs> {
    let m = grid.num_procs() as u32;
    proptest::collection::vec((0..m, 1u32..6), 0..6).prop_map(move |pairs| {
        WindowRefs::from_pairs(pairs.into_iter().map(|(p, n)| (ProcId(p), n)))
    })
}

/// Random windowed trace: up to 4 data × up to 6 windows.
fn arb_trace() -> impl Strategy<Value = WindowedTrace> {
    arb_grid().prop_flat_map(|grid| {
        (1usize..=4, 1usize..=6).prop_flat_map(move |(nd, nw)| {
            proptest::collection::vec(proptest::collection::vec(arb_refs(grid), nw..=nw), nd..=nd)
                .prop_map(move |per_data| WindowedTrace::from_parts(grid, per_data))
        })
    })
}

/// Memory policies to cross with every method: unconstrained, the paper's
/// doubled balanced minimum, and the tightest uniform capacity that still
/// fits every datum.
fn policies(trace: &WindowedTrace) -> [MemoryPolicy; 3] {
    let tight = (trace.num_data() as u32).div_ceil(trace.grid().num_procs() as u32);
    [
        MemoryPolicy::Unbounded,
        MemoryPolicy::ScaledMinimum { factor: 2 },
        MemoryPolicy::Capacity(tight.max(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: for every method and policy, the cached
    /// dispatch produces exactly the schedule the uncached reference does —
    /// same centers, not just same cost.
    #[test]
    fn cached_schedules_bit_identical_to_uncached(trace in arb_trace()) {
        for method in Method::ALL {
            for policy in policies(&trace) {
                let cached = schedule(method, &trace, policy);
                let reference = schedule_uncached(method, &trace, policy);
                prop_assert_eq!(
                    &cached, &reference,
                    "{} under {:?} diverged from reference", method, policy
                );
            }
        }
    }

    /// A dirty workspace must not leak state between runs: scheduling a
    /// second unrelated trace through the same cache+workspace pair gives
    /// the same result as a fresh workspace.
    #[test]
    fn workspace_reuse_does_not_leak_state(a in arb_trace(), b in arb_trace()) {
        let mut ws = Workspace::new();
        let cache_a = CostCache::build(&a);
        let cache_b = CostCache::build(&b);
        for method in Method::ALL {
            // warm (and dirty) the workspace on trace `a`...
            let _ = schedule_cached(method, &a, MemoryPolicy::Unbounded, &cache_a, &mut ws);
            // ...then `b` through the dirty workspace must match a cold run
            let warm = schedule_cached(method, &b, MemoryPolicy::Unbounded, &cache_b, &mut ws);
            let cold = schedule(method, &b, MemoryPolicy::Unbounded);
            prop_assert_eq!(&warm, &cold, "{} leaked workspace state", method);
        }
    }

    /// Persistent-pool determinism: any pool width produces the serial
    /// schedule, for every method (index-ordered output contract).
    #[test]
    fn persistent_pool_matches_serial(trace in arb_trace(), threads in 2usize..=8) {
        for method in Method::ALL {
            let serial = schedule_parallel(method, &trace, Pool::serial());
            let parallel = schedule_parallel(method, &trace, Pool::with_threads(threads));
            prop_assert_eq!(
                &serial, &parallel,
                "{} with {} threads diverged from serial", method, threads
            );
            // and the parallel (unconstrained) path agrees with `schedule`
            let seq = schedule(method, &trace, MemoryPolicy::Unbounded);
            prop_assert_eq!(&seq, &parallel, "{} parallel != sequential", method);
        }
    }

    /// Registry-wide conformance: every registered scheduler × every memory
    /// policy is bit-identical across the plain (cached), uncached, and
    /// parallel execution wrappers. For bounded policies the parallel
    /// wrapper runs the two-phase scheme (parallel per-datum computation,
    /// sequential capacity replay in datum order), so this pins that the
    /// two-phase replay reproduces the sequential capacity resolution
    /// exactly — not merely the same cost.
    #[test]
    fn registry_conformance_across_wrappers(trace in arb_trace(), threads in 2usize..=8) {
        for scheduler in pim_sched::registry().iter() {
            for policy in policies(&trace) {
                let cached = Run::new(&trace).policy(policy).run(scheduler);
                let uncached = Run::new(&trace).policy(policy).cached(false).run(scheduler);
                prop_assert_eq!(
                    &cached, &uncached,
                    "{} under {:?}: cached != uncached", scheduler.name(), policy
                );
                let parallel = Run::new(&trace)
                    .policy(policy)
                    .parallel(Pool::with_threads(threads))
                    .run(scheduler);
                prop_assert_eq!(
                    &cached, &parallel,
                    "{} under {:?}: parallel != cached", scheduler.name(), policy
                );
            }
        }
    }

    /// Metrics collection is pure observation: for every registered
    /// scheduler × policy × {sequential, parallel} wrapper, a run with an
    /// enabled metrics sink produces exactly the schedule the metrics-free
    /// run does — same centers, not just same cost.
    #[test]
    fn metrics_never_change_a_schedule_bit(trace in arb_trace(), threads in 2usize..=4) {
        for scheduler in pim_sched::registry().iter() {
            for policy in policies(&trace) {
                let plain = Run::new(&trace).policy(policy).run(scheduler);
                let metrics = pim_sched::Metrics::enabled();
                let observed = Run::new(&trace)
                    .policy(policy)
                    .metrics(metrics.clone())
                    .run(scheduler);
                prop_assert_eq!(
                    &plain, &observed,
                    "{} under {:?}: metrics changed the sequential schedule",
                    scheduler.name(), policy
                );
                let par_metrics = pim_sched::Metrics::enabled();
                let par_observed = Run::new(&trace)
                    .policy(policy)
                    .parallel(Pool::with_threads(threads))
                    .metrics(par_metrics.clone())
                    .run(scheduler);
                prop_assert_eq!(
                    &plain, &par_observed,
                    "{} under {:?}: metrics changed the parallel schedule",
                    scheduler.name(), policy
                );
                // the observed runs actually recorded something observable
                prop_assert!(metrics.report().enabled);
                prop_assert!(par_metrics.report().enabled);
            }
        }
    }

    /// Without an attached DAG the precedence-aware strategies *are*
    /// GOMCDS, bit for bit, across every execution wrapper — the
    /// precedence layer is invisible until `Run::dag` opts in.
    #[test]
    fn precedence_schedulers_without_a_dag_are_gomcds(
        trace in arb_trace(),
        threads in 2usize..=4,
    ) {
        for policy in policies(&trace) {
            let gomcds = Run::new(&trace).policy(policy).run_named("GOMCDS");
            for name in ["list-scds", "edf-scds"] {
                for cached in [true, false] {
                    let s = Run::new(&trace).policy(policy).cached(cached).run_named(name);
                    match (&gomcds, &s) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(
                            a, b, "{} (cached={}) under {:?}", name, cached, policy
                        ),
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(
                            false,
                            "{} under {:?}: feasibility diverged from GOMCDS", name, policy
                        ),
                    }
                }
                let par = Run::new(&trace)
                    .policy(policy)
                    .parallel(Pool::with_threads(threads))
                    .run_named(name);
                match (&gomcds, &par) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(
                        a, b, "{} (parallel) under {:?}", name, policy
                    ),
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(
                        false,
                        "{} (parallel) under {:?}: feasibility diverged", name, policy
                    ),
                }
            }
        }
    }

    /// The SoA trace layout is a pure representation change: a cost cache
    /// built from the flat CSR refs drives every registered scheduler ×
    /// policy to exactly the schedule the nested-trace cache produces.
    #[test]
    fn flat_backed_cache_bit_identical(trace in arb_trace()) {
        let flat = FlatTrace::from_trace(&trace);
        for scheduler in pim_sched::registry().iter() {
            for policy in policies(&trace) {
                let classic = Run::new(&trace).policy(policy).run(scheduler);
                let cache = CostCache::build_flat(&flat);
                let mut ctx = SchedContext::with_cache(&trace, policy, cache);
                let flat_backed = scheduler.schedule(&mut ctx, &trace);
                prop_assert_eq!(
                    &classic, &flat_backed,
                    "{} under {:?}: flat-backed cache diverged", scheduler.name(), policy
                );
            }
        }
    }

    /// The flat fast paths (incremental medians + chunk-sharded fan-out +
    /// capacity replay) are bit-identical to the classic schedulers for
    /// every policy, and `flat_total_cost` charges exactly what
    /// `Schedule::evaluate` does.
    #[test]
    fn flat_fast_paths_bit_identical(trace in arb_trace(), threads in 1usize..=4) {
        let flat = FlatTrace::from_trace(&trace);
        let pool = Pool::with_threads(threads);
        for policy in policies(&trace) {
            for (method, fast) in [
                (Method::Scds, flat_scds as fn(&FlatTrace, MemoryPolicy, Pool) -> _),
                (Method::Lomcds, flat_lomcds),
                (Method::Gomcds, flat_gomcds),
            ] {
                let classic = schedule(method, &trace, policy);
                let fast = fast(&flat, policy, pool)
                    .unwrap_or_else(|e| panic!("{method} {policy:?}: {e}"));
                prop_assert_eq!(
                    &classic, &fast,
                    "flat {} under {:?} diverged", method, policy
                );
                prop_assert_eq!(
                    flat_total_cost(&flat, &fast),
                    classic.evaluate(&trace),
                    "flat cost model diverged for {} under {:?}", method, policy
                );
            }
        }
    }

    /// Incremental window medians equal the scan-based center selection on
    /// random traces: sliding per-window sweeps and extending merged
    /// prefixes both match `median_center`, and the cache's table-free
    /// `range_median` matches the cost-table argmin it replaces.
    #[test]
    fn incremental_medians_match_scan_selection(trace in arb_trace()) {
        let grid = trace.grid();
        let cache = CostCache::build(&trace);
        let mut st = pim_sched::median::MedianState::default();
        let mut axes = Default::default();
        let mut table = Vec::new();
        for (d, rs) in trace.iter_data() {
            let dc = cache.datum(d);
            // Sliding single-window sweep.
            st.reset(&grid);
            for w in 0..trace.num_windows() {
                let refs = rs.window(w);
                for r in refs.iter() {
                    let p = grid.point_of(r.proc);
                    st.add(p.x, p.y, r.count as u64);
                }
                prop_assert_eq!(
                    st.center(&grid),
                    pim_sched::median::median_center(&grid, refs),
                    "datum {:?} window {}: sliding median diverged", d, w
                );
                prop_assert_eq!(
                    dc.range_median(w, w + 1, &mut axes),
                    dc.optimal_center_range(w, w + 1, &mut axes, &mut table).0,
                    "datum {:?} window {}: range_median != table argmin", d, w
                );
                for r in refs.iter() {
                    let p = grid.point_of(r.proc);
                    st.remove(p.x, p.y, r.count as u64);
                }
            }
            // Extending merged prefix (the SCDS shape).
            st.reset(&grid);
            for hi in 1..=trace.num_windows() {
                for r in rs.window(hi - 1).iter() {
                    let p = grid.point_of(r.proc);
                    st.add(p.x, p.y, r.count as u64);
                }
                prop_assert_eq!(
                    st.center(&grid),
                    pim_sched::median::median_center(&grid, &rs.merged_range(0, hi)),
                    "datum {:?} prefix 0..{}: extending median diverged", d, hi
                );
            }
        }
    }

    /// The pool helpers themselves: per-worker state plus repeated reuse of
    /// the long-lived workers never change the output.
    #[test]
    fn parallel_map_with_deterministic(items in proptest::collection::vec(0u64..1000, 0..200)) {
        let expect: Vec<u64> = items.iter().enumerate()
            .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
            .collect();
        for pool in [Pool::serial(), Pool::with_threads(4), Pool::with_threads(8)] {
            let got = pim_par::parallel_map_with(
                pool,
                &items,
                Vec::<u64>::new,
                |scratch, i, &x| {
                    scratch.push(x); // per-worker state, grows across items
                    x.wrapping_mul(31).wrapping_add(i as u64)
                },
            );
            prop_assert_eq!(&got, &expect);
        }
    }
}
