//! Integration tests for the beyond-the-paper extensions: exhaustive
//! certification, local-search refinement, read replication, the online
//! policy, and the cycle-level network simulation — all on real benchmark
//! traces.

use pim_array::grid::Grid;
use pim_array::memory::MemorySpec;
use pim_sched::exhaustive::optimal_path_exhaustive;
use pim_sched::gomcds::{gomcds_path, Solver};
use pim_sched::online::{online_schedule, OnlinePolicy};
use pim_sched::refine::refine;
use pim_sched::replicate::replicated_schedule;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::ids::DataId;
use pim_workloads::{windowed, Benchmark};
use proptest::prelude::*;

#[test]
fn gomcds_certified_optimal_on_tiny_machines() {
    // Exhaustive enumeration over every center sequence on a 2x2 and a
    // 3x2 array must agree with the DP on real workload reference strings.
    for (w, h, n) in [(2u32, 2u32, 4u32), (3, 2, 4)] {
        let grid = Grid::new(w, h);
        let (trace, _) = windowed(Benchmark::Lu, grid, n, 2, 0);
        assert!(trace.num_windows() <= 7, "keep exhaustive search feasible");
        for d in 0..trace.num_data() {
            let rs = trace.refs(DataId(d as u32));
            let (_, ex) = optimal_path_exhaustive(&grid, rs);
            let (_, go) = gomcds_path(&grid, rs, Solver::DistanceTransform);
            assert_eq!(go, ex, "datum {d} on {w}x{h}");
        }
    }
}

#[test]
fn refinement_cannot_improve_gomcds_on_benchmarks() {
    let grid = Grid::new(4, 4);
    for bench in [Benchmark::Lu, Benchmark::CodeReverse] {
        let (trace, _) = windowed(bench, grid, 8, 2, 1998);
        let spec = MemorySpec::unbounded();
        let mut s = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
        let stats = refine(&trace, &mut s, spec, 50);
        assert_eq!(stats.moves_applied, 0, "{bench}");
    }
}

#[test]
fn refinement_improves_the_baseline_substantially() {
    let grid = Grid::new(4, 4);
    let (trace, space) = windowed(Benchmark::Lu, grid, 16, 2, 0);
    let mut s = space.straightforward(&trace, pim_array::layout::Layout::RowWise);
    let before = s.evaluate(&trace).total();
    refine(&trace, &mut s, MemorySpec::unbounded(), 100);
    let after = s.evaluate(&trace).total();
    assert!(
        after * 2 < before,
        "refined baseline {after} should at least halve {before}"
    );
}

#[test]
fn replication_gains_are_real_and_bounded() {
    let grid = Grid::new(4, 4);
    for bench in Benchmark::paper_set() {
        let (trace, _) = windowed(bench, grid, 8, 2, 1998);
        let spec = MemorySpec::unbounded();
        let single = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace)
            .total();
        let repl = replicated_schedule(&trace, spec);
        let dual = repl.evaluate(&trace).total();
        assert!(dual <= single, "{bench}: 2-copy worse than 1-copy");
        assert!(
            dual > 0,
            "{bench}: zero cost is implausible for real traces"
        );
    }
}

#[test]
fn replication_respects_memory() {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::MatMul, grid, 8, 2, 0);
    let policy = MemoryPolicy::ScaledMinimum { factor: 2 };
    let spec = policy.resolve(&trace);
    let repl = replicated_schedule(&trace, spec);
    // count per-window occupancy including secondaries
    for w in 0..trace.num_windows() {
        let mut occ = vec![0u32; grid.num_procs()];
        for d in 0..trace.num_data() {
            let (p, s) = repl.replicas_of(DataId(d as u32), w);
            occ[p.index()] += 1;
            if let Some(s) = s {
                occ[s.index()] += 1;
            }
        }
        assert!(
            occ.iter().all(|&n| n <= spec.capacity_per_proc),
            "window {w} exceeds capacity: {occ:?}"
        );
    }
}

#[test]
fn online_is_sandwiched_between_offline_and_static() {
    let grid = Grid::new(4, 4);
    for bench in Benchmark::paper_set() {
        let (trace, _) = windowed(bench, grid, 8, 2, 1998);
        let offline = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace)
            .total();
        let online = online_schedule(&trace, OnlinePolicy::eager(MemorySpec::unbounded()))
            .unwrap()
            .evaluate(&trace)
            .total();
        assert!(online >= offline, "{bench}: online beat clairvoyance");
    }
}

#[test]
fn cycle_sim_consistent_with_bounds_on_benchmarks() {
    use pim_sim::cycle::run_window;
    use pim_sim::engine::window_messages;
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::Lu, grid, 8, 2, 0);
    let s = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
    for w in 0..trace.num_windows() {
        let msgs = window_messages(&trace, &s, w);
        let bound = pim_sim::contention::window_completion_time(&grid, &msgs);
        let r = run_window(&grid, &msgs).expect("benchmark window fits the safety valve");
        assert!(
            r.completion_cycle >= bound,
            "window {w}: simulated {} < bound {bound}",
            r.completion_cycle
        );
        let hop_volume: u64 = msgs
            .iter()
            .filter(|m| !m.is_local())
            .map(|m| grid.dist(m.src, m.dst) * m.volume as u64)
            .sum();
        assert_eq!(r.flit_hops, hop_volume, "window {w}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random tiny traces: exhaustive vs GOMCDS, end to end.
    #[test]
    fn random_tiny_traces_certify_gomcds(
        seed in 0u64..5000,
        nw in 1usize..5,
    ) {
        let grid = Grid::new(2, 2);
        let mut windows = Vec::new();
        let mut s = seed;
        for _ in 0..nw {
            let mut refs = Vec::new();
            for i in 0..(s % 3) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                refs.push((
                    pim_array::grid::ProcId((s % 4) as u32),
                    (s % 5 + 1) as u32 + i as u32,
                ));
            }
            windows.push(pim_trace::window::WindowRefs::from_pairs(refs));
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        }
        let rs = pim_trace::window::DataRefString::new(windows);
        let (_, ex) = optimal_path_exhaustive(&grid, &rs);
        let (_, go) = gomcds_path(&grid, &rs, Solver::DistanceTransform);
        prop_assert_eq!(go, ex);
    }
}
