//! Trace binary encoding round-trips on real benchmark traces, including
//! corruption detection.

use pim_array::grid::Grid;
use pim_trace::encode::{decode_trace, encode_trace, encoded_size, DecodeError};
use pim_workloads::{windowed, Benchmark};

#[test]
fn every_benchmark_roundtrips() {
    let grid = Grid::new(4, 4);
    for bench in Benchmark::paper_set() {
        let (trace, _) = windowed(bench, grid, 8, 2, 1998);
        let buf = encode_trace(&trace);
        assert_eq!(buf.len(), encoded_size(&trace), "{bench}");
        let back = decode_trace(buf).unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert_eq!(back, trace, "{bench}");
    }
}

#[test]
fn truncation_is_detected_not_misparsed() {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::Lu, grid, 8, 2, 0);
    let buf = encode_trace(&trace);
    // cut at several interior offsets
    for frac in [1usize, 3, 10, 2] {
        let cut = buf.len() * frac / 11;
        let sliced = buf.slice(0..cut.min(buf.len() - 1));
        match decode_trace(sliced) {
            Err(DecodeError::Truncated) | Err(DecodeError::Invalid(_)) => {}
            other => panic!("cut at {cut}: expected failure, got {other:?}"),
        }
    }
}

#[test]
fn schedules_survive_trace_roundtrip() {
    use pim_sched::{schedule, MemoryPolicy, Method};
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::CodeReverse, grid, 8, 2, 5);
    let restored = decode_trace(encode_trace(&trace)).unwrap();
    // scheduling the restored trace gives bit-identical results
    let a = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
    let b = schedule(Method::Gomcds, &restored, MemoryPolicy::Unbounded);
    assert_eq!(a, b);
}
