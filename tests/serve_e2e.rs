//! End-to-end exercise of the serve daemon over a real socket: load,
//! schedule, edit, stats and evict round-trips; schedules that match a
//! direct in-process run bit for bit (checked through the full cost
//! breakdown); typed `overloaded` rejections under an over-capacity
//! burst; and typed errors (never a hang or a dropped connection) for
//! malformed request lines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pim_array::grid::{Grid, ProcId};
use pim_par::Pool;
use pim_sched::flat::{flat_gomcds, flat_lomcds, flat_scds, flat_total_cost};
use pim_sched::pipeline::MemoryPolicy;
use pim_serve::{Client, ServeConfig, Server};
use pim_trace::flat::{FlatRecord, FlatTrace};
use pim_trace::ids::DataId;
use pim_trace::json::{self, Value};

/// A deterministic 6×6 trace with enough structure that the three
/// schedulers produce distinct non-trivial placements.
fn test_trace() -> FlatTrace {
    let grid = Grid::new(6, 6);
    let (nw, nd) = (8, 40);
    let records = (0..nd as u32).flat_map(|d| {
        (0..nw as u32).filter_map(move |w| {
            if (d + w) % 3 == 0 {
                None
            } else {
                Some(FlatRecord {
                    datum: DataId(d),
                    window: w,
                    proc: ProcId((d * 7 + w * 11) % 36),
                    count: 1 + (d + w) % 5,
                })
            }
        })
    });
    FlatTrace::from_records(grid, nw, nd, records).expect("test trace builds")
}

fn load_request(flat: &FlatTrace) -> String {
    let mut text = String::from(r#"{"op":"load","text":""#);
    json::escape_into(&mut text, &flat.to_text());
    text.push_str("\"}");
    text
}

fn parse_ok(response: &str) -> Value {
    let v = json::parse(response).expect("response parses");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "expected ok response, got: {response}"
    );
    v
}

fn parse_err(response: &str) -> String {
    let v = json::parse(response).expect("response parses");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(false),
        "expected error response, got: {response}"
    );
    v.get("error")
        .and_then(Value::as_str)
        .expect("error kind present")
        .to_string()
}

fn cost_of(v: &Value) -> (u64, u64, u64) {
    let cost = v.get("cost").expect("cost present");
    (
        cost.get("reference").and_then(Value::as_u64).unwrap(),
        cost.get("movement").and_then(Value::as_u64).unwrap(),
        cost.get("total").and_then(Value::as_u64).unwrap(),
    )
}

#[test]
fn socket_session_matches_direct_run() {
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 32,
        cache_bytes: 64 << 20,
        pool_threads: 1,
    };
    let server = Server::start_tcp(&config, "127.0.0.1:0").expect("daemon starts");
    let addr = server.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("client connects");

    let flat = test_trace();
    let loaded = parse_ok(&client.request(&load_request(&flat)).unwrap());
    let key = loaded
        .get("trace")
        .and_then(Value::as_str)
        .expect("trace key")
        .to_string();
    assert_eq!(loaded.get("fresh").and_then(Value::as_bool), Some(true));

    // Every incremental-capable method served over the socket must agree
    // with an in-process run on the full cost breakdown.
    let pool = Pool::with_threads(1);
    for (method, direct) in [
        ("scds", flat_scds(&flat, MemoryPolicy::Unbounded, pool)),
        ("lomcds", flat_lomcds(&flat, MemoryPolicy::Unbounded, pool)),
        ("gomcds", flat_gomcds(&flat, MemoryPolicy::Unbounded, pool)),
    ] {
        let schedule = direct.expect("direct schedule");
        let expected = flat_total_cost(&flat, &schedule);
        let response = parse_ok(
            &client
                .request(&format!(
                    r#"{{"op":"schedule","trace":"{key}","method":"{method}"}}"#
                ))
                .unwrap(),
        );
        let (reference, movement, total) = cost_of(&response);
        assert_eq!(reference, expected.reference, "{method} reference cost");
        assert_eq!(movement, expected.movement, "{method} movement cost");
        assert_eq!(total, expected.total(), "{method} total cost");
    }

    // Edit bumps the version; the follow-up schedule is warm and its cost
    // matches a from-scratch run over the edited trace.
    let edit = format!(
        r#"{{"op":"edit","trace":"{key}","delta":{{"version":1,"ops":[{{"op":"set_run","datum":3,"window":2,"refs":[[0,9],[35,1]]}}]}}}}"#
    );
    let edited = parse_ok(&client.request(&edit).unwrap());
    assert_eq!(edited.get("version").and_then(Value::as_u64), Some(1));

    let warm = parse_ok(
        &client
            .request(&format!(
                r#"{{"op":"schedule","trace":"{key}","method":"gomcds"}}"#
            ))
            .unwrap(),
    );
    assert_eq!(warm.get("warm").and_then(Value::as_bool), Some(true));
    let mut expected_flat = flat.clone();
    {
        let mut editable = pim_trace::edit::EditableTrace::new(expected_flat);
        let mut delta = pim_trace::edit::TraceDelta::new();
        delta.set_run(DataId(3), 2, [(ProcId(0), 9), (ProcId(35), 1)]);
        editable.apply(&delta).expect("edit applies");
        expected_flat = editable.materialize();
    }
    let direct = flat_gomcds(&expected_flat, MemoryPolicy::Unbounded, pool).unwrap();
    let expected = flat_total_cost(&expected_flat, &direct);
    let (reference, movement, total) = cost_of(&warm);
    assert_eq!(reference, expected.reference, "post-edit reference cost");
    assert_eq!(movement, expected.movement, "post-edit movement cost");
    assert_eq!(total, expected.total(), "post-edit total cost");

    // Stats reflect the session and parse as JSON.
    let stats = parse_ok(&client.request(r#"{"op":"stats"}"#).unwrap());
    let requests = stats
        .get("server")
        .and_then(|s| s.get("requests"))
        .expect("request counters");
    assert!(requests.get("schedule").and_then(Value::as_u64).unwrap() >= 4);
    assert_eq!(
        stats
            .get("store")
            .and_then(|s| s.get("traces"))
            .and_then(Value::as_u64),
        Some(1)
    );

    // Evicting the trace makes follow-up schedules fail typed.
    let evicted = parse_ok(
        &client
            .request(&format!(r#"{{"op":"evict","trace":"{key}"}}"#))
            .unwrap(),
    );
    assert_eq!(evicted.get("evicted").and_then(Value::as_bool), Some(true));
    let kind = parse_err(
        &client
            .request(&format!(
                r#"{{"op":"schedule","trace":"{key}","method":"scds"}}"#
            ))
            .unwrap(),
    );
    assert_eq!(kind, "unknown_trace");

    server.shutdown();
}

#[test]
fn malformed_lines_get_typed_errors_and_the_daemon_survives() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache_bytes: 16 << 20,
        pool_threads: 1,
    };
    let server = Server::start_tcp(&config, "127.0.0.1:0").expect("daemon starts");
    let addr = server.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("client connects");

    for (line, want) in [
        ("this is not json", "bad_request"),
        ("{}", "bad_request"),
        (r#"{"op":"teleport"}"#, "unknown_method"),
        (r#"{"op":"load"}"#, "bad_request"),
        (r#"{"op":"load","text":"flat v2 1 1 1 1"}"#, "trace_error"),
        (
            r#"{"op":"schedule","trace":"zzzz","method":"scds"}"#,
            "bad_request",
        ),
        (
            r#"{"op":"schedule","trace":"00000000000000aa","method":"scds"}"#,
            "unknown_trace",
        ),
        (
            r#"{"op":"edit","trace":"00000000000000aa","delta":5}"#,
            "bad_request",
        ),
    ] {
        assert_eq!(
            parse_err(&client.request(line).unwrap()),
            want,
            "line: {line}"
        );
    }

    // The daemon still answers real work on the same connection.
    let flat = test_trace();
    let loaded = parse_ok(&client.request(&load_request(&flat)).unwrap());
    let key = loaded
        .get("trace")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    parse_ok(
        &client
            .request(&format!(
                r#"{{"op":"schedule","trace":"{key}","method":"scds"}}"#
            ))
            .unwrap(),
    );
    server.shutdown();
}

#[test]
fn over_capacity_burst_is_shed_not_queued() {
    // One worker, a queue of one, and clients that outnumber both: the
    // daemon must answer every request (no hang) and shed the excess as
    // typed `overloaded` rejections.
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        cache_bytes: 16 << 20,
        pool_threads: 1,
    };
    let server = Server::start_tcp(&config, "127.0.0.1:0").expect("daemon starts");
    let addr = server.tcp_addr().expect("tcp endpoint");

    let flat = test_trace();
    let mut setup = Client::connect_tcp(addr).expect("setup client");
    let loaded = parse_ok(&setup.request(&load_request(&flat)).unwrap());
    let key: Arc<str> = loaded.get("trace").and_then(Value::as_str).unwrap().into();

    let answered = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let key = Arc::clone(&key);
            let answered = Arc::clone(&answered);
            let overloaded = Arc::clone(&overloaded);
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).expect("burst client");
                let line = format!(r#"{{"op":"schedule","trace":"{key}","method":"gomcds"}}"#);
                for _ in 0..20 {
                    let response = client.request(&line).expect("always answered");
                    answered.fetch_add(1, Ordering::Relaxed);
                    let v = json::parse(&response).expect("response parses");
                    match v.get("ok").and_then(Value::as_bool) {
                        Some(true) => {}
                        Some(false) => {
                            assert_eq!(
                                v.get("error").and_then(Value::as_str),
                                Some("overloaded"),
                                "unexpected error: {response}"
                            );
                            let depth = v
                                .get("queue_depth")
                                .and_then(Value::as_u64)
                                .expect("overloaded carries queue depth");
                            assert!(depth <= 1);
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        None => panic!("malformed response: {response}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("burst client thread");
    }
    assert_eq!(
        answered.load(Ordering::Relaxed),
        8 * 20,
        "every request answered"
    );
    assert!(
        overloaded.load(Ordering::Relaxed) > 0,
        "over-capacity burst produced no rejections"
    );

    // Server-side counter agrees that rejections happened.
    let stats = parse_ok(&setup.request(r#"{"op":"stats"}"#).unwrap());
    let rejected = stats
        .get("server")
        .and_then(|s| s.get("rejected_overloaded"))
        .and_then(Value::as_u64)
        .unwrap();
    assert_eq!(rejected, overloaded.load(Ordering::Relaxed));
    server.shutdown();
}

#[test]
fn unix_socket_round_trip() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache_bytes: 16 << 20,
        pool_threads: 1,
    };
    let path = std::env::temp_dir().join(format!("pim-serve-e2e-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = Server::start_unix(&config, &path).expect("daemon starts");
    let mut client = Client::connect_unix(&path).expect("client connects");
    let pong = parse_ok(&client.request(r#"{"id":7,"op":"ping"}"#).unwrap());
    assert_eq!(pong.get("id").and_then(Value::as_u64), Some(7));
    server.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}
