//! Property tests over randomly generated traces: optimality orderings,
//! solver agreement, parallel determinism, and cost-model self-consistency.

use pim_array::grid::{Grid, ProcId};
use pim_par::Pool;
use pim_sched::cost::{cost_at, cost_table, cost_table_naive, optimal_center};
use pim_sched::median::median_center;
use pim_sched::{schedule, schedule_parallel, MemoryPolicy, Method};
use pim_trace::window::{WindowRefs, WindowedTrace};
use proptest::prelude::*;

/// Random grid up to 6×6.
fn arb_grid() -> impl Strategy<Value = Grid> {
    (1u32..=6, 1u32..=6).prop_map(|(w, h)| Grid::new(w, h))
}

/// Random reference string over a grid (possibly empty).
fn arb_refs(grid: Grid) -> impl Strategy<Value = WindowRefs> {
    let m = grid.num_procs() as u32;
    proptest::collection::vec((0..m, 1u32..6), 0..6).prop_map(move |pairs| {
        WindowRefs::from_pairs(pairs.into_iter().map(|(p, n)| (ProcId(p), n)))
    })
}

/// Random windowed trace: up to 4 data × up to 6 windows.
fn arb_trace() -> impl Strategy<Value = WindowedTrace> {
    arb_grid().prop_flat_map(|grid| {
        (1usize..=4, 1usize..=6).prop_flat_map(move |(nd, nw)| {
            proptest::collection::vec(proptest::collection::vec(arb_refs(grid), nw..=nw), nd..=nd)
                .prop_map(move |per_data| WindowedTrace::from_parts(grid, per_data))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gomcds_never_worse_unbounded(trace in arb_trace()) {
        let go = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace).total();
        for other in [Method::Scds, Method::Lomcds, Method::GroupedLocal, Method::GroupedGomcds] {
            let cost = schedule(other, &trace, MemoryPolicy::Unbounded)
                .evaluate(&trace).total();
            prop_assert!(go <= cost, "GOMCDS {go} > {other} {cost}");
        }
    }

    #[test]
    fn naive_and_dt_gomcds_agree(trace in arb_trace()) {
        let a = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
        let b = schedule(Method::GomcdsNaive, &trace, MemoryPolicy::Unbounded);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn naive_and_dt_agree_under_capacity(trace in arb_trace()) {
        // capacity: enough room overall, tight per processor
        let cap = (trace.num_data() as u32).div_ceil(trace.grid().num_procs() as u32) + 1;
        let a = schedule(Method::Gomcds, &trace, MemoryPolicy::Capacity(cap));
        let b = schedule(Method::GomcdsNaive, &trace, MemoryPolicy::Capacity(cap));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parallel_equals_sequential(trace in arb_trace()) {
        for method in [Method::Scds, Method::Lomcds, Method::Gomcds, Method::GroupedLocal] {
            let seq = schedule(method, &trace, MemoryPolicy::Unbounded);
            let par = schedule_parallel(method, &trace, Pool::with_threads(4));
            prop_assert_eq!(seq, par, "method {}", method);
        }
    }

    #[test]
    fn scds_is_single_window_optimal(trace in arb_trace()) {
        // SCDS cost equals the optimum of the collapsed (single-window)
        // problem, which is GOMCDS on the collapsed trace.
        let collapsed = trace.collapsed();
        let scds = schedule(Method::Scds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace).total();
        let collapsed_opt = schedule(Method::Gomcds, &collapsed, MemoryPolicy::Unbounded)
            .evaluate(&collapsed).total();
        prop_assert_eq!(scds, collapsed_opt);
    }

    #[test]
    fn cost_tables_agree(grid in arb_grid(), seed in 0u64..500) {
        let m = grid.num_procs() as u32;
        let refs = WindowRefs::from_pairs(
            (0..seed % 7).map(|i| (ProcId((seed.wrapping_mul(i + 3) % m as u64) as u32), (i % 4 + 1) as u32)),
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        cost_table_naive(&grid, &refs, &mut a);
        cost_table(&grid, &refs, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn median_solver_matches_table_solver(grid in arb_grid(), seed in 0u64..500) {
        let m = grid.num_procs() as u32;
        let refs = WindowRefs::from_pairs(
            (0..seed % 8).map(|i| (ProcId((seed.wrapping_mul(i + 11) % m as u64) as u32), (i % 3 + 1) as u32)),
        );
        let (c_table, best) = optimal_center(&grid, &refs);
        let c_median = median_center(&grid, &refs);
        prop_assert_eq!(cost_at(&grid, &refs, c_median), best);
        prop_assert_eq!(c_median, c_table);
    }

    #[test]
    fn evaluate_is_additive_over_data(trace in arb_trace()) {
        let s = schedule(Method::Lomcds, &trace, MemoryPolicy::Unbounded);
        let total = s.evaluate(&trace);
        let mut sum = pim_sched::CostBreakdown::default();
        for d in 0..trace.num_data() {
            sum.add(s.evaluate_data(&trace, pim_trace::ids::DataId(d as u32)));
        }
        prop_assert_eq!(total, sum);
    }

    #[test]
    fn simulator_always_matches_analytic(trace in arb_trace()) {
        let s = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
        let report = pim_sim::simulate(&trace, &s, Pool::serial());
        prop_assert_eq!(report.total_hop_volume(), s.evaluate(&trace).total());
    }
}
