//! Property tests for incremental rescheduling under churn: random base
//! traces driven through random edit sequences must keep the incremental
//! engine's schedule **bit-identical** to a from-scratch re-schedule of
//! the materialized trace after *every* delta — for every supported
//! method under unbounded, scaled-minimum, and tight explicit capacity.
//!
//! This pins the ≥10× churn speedup claim to exactness: the fast path is
//! only allowed to exist because these tests hold.

use pim_array::grid::{Grid, ProcId};
use pim_par::Pool;
use pim_sched::{
    flat_gomcds, flat_lomcds, flat_scds, IncrementalRun, MemoryPolicy, Method, Schedule,
};
use pim_trace::edit::TraceDelta;
use pim_trace::flat::{FlatRecord, FlatTrace};
use pim_trace::ids::DataId;
use proptest::prelude::*;

/// A base instance small enough to re-solve from scratch after every edit.
#[derive(Debug, Clone)]
struct Instance {
    grid: Grid,
    num_windows: usize,
    num_data: usize,
    records: Vec<(u32, u32, u32, u32)>, // (datum, window, proc, count)
}

impl Instance {
    fn flat(&self) -> FlatTrace {
        FlatTrace::from_records(
            self.grid,
            self.num_windows,
            self.num_data,
            self.records.iter().map(|&(d, w, p, c)| FlatRecord {
                datum: DataId(d),
                window: w,
                proc: ProcId(p),
                count: c,
            }),
        )
        .expect("strategy emits only in-range records")
    }
}

/// One raw edit op; indices are reduced modulo the live bounds at apply
/// time so appends composing with rewrites stay in range.
#[derive(Debug, Clone)]
enum RawOp {
    SetRun {
        datum: u32,
        window: u32,
        refs: Vec<(u32, u32)>,
    },
    AppendWindow {
        rows: Vec<(u32, u32, u32)>,
    },
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    ((2u32..=4, 2u32..=4), 1usize..=4, 1usize..=5).prop_flat_map(|((w, h), nw, nd)| {
        let m = w * h;
        proptest::collection::vec(
            (0..nd as u32, 0..nw as u32, 0..m, 1u32..5),
            0..=(3 * nd).min(12),
        )
        .prop_map(move |records| Instance {
            grid: Grid::new(w, h),
            num_windows: nw,
            num_data: nd,
            records,
        })
    })
}

/// Edit sequence: 1–4 deltas of 1–3 ops each. `SetRun` refs may be empty
/// (run removal) and `AppendWindow` rows may be empty (an idle window).
fn arb_deltas() -> impl Strategy<Value = Vec<Vec<RawOp>>> {
    let op = prop_oneof![
        (
            0u32..=u32::MAX,
            0u32..=u32::MAX,
            proptest::collection::vec((0u32..=u32::MAX, 1u32..5), 0..3),
        )
            .prop_map(|(datum, window, refs)| RawOp::SetRun {
                datum,
                window,
                refs
            }),
        proptest::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX, 1u32..5), 0..3)
            .prop_map(|rows| RawOp::AppendWindow { rows }),
    ];
    proptest::collection::vec(proptest::collection::vec(op, 1..=3), 1..=4)
}

/// Reduce a raw delta against the live instance bounds, tracking appended
/// windows so later ops in the same delta may target them.
fn concretize(inst: &Instance, mut num_windows: usize, raw: &[RawOp]) -> TraceDelta {
    let m = inst.grid.num_procs() as u32;
    let nd = inst.num_data as u32;
    let mut delta = TraceDelta::new();
    for op in raw {
        match op {
            RawOp::SetRun {
                datum,
                window,
                refs,
            } => {
                delta.set_run(
                    DataId(datum % nd),
                    window % num_windows as u32,
                    refs.iter().map(|&(p, c)| (ProcId(p % m), c)),
                );
            }
            RawOp::AppendWindow { rows } => {
                delta.append_window(
                    rows.iter()
                        .map(|&(d, p, c)| (DataId(d % nd), ProcId(p % m), c)),
                );
                num_windows += 1;
            }
        }
    }
    delta
}

fn scratch(flat: &FlatTrace, method: Method, policy: MemoryPolicy) -> Schedule {
    let pool = Pool::serial();
    match method {
        Method::Scds => flat_scds(flat, policy, pool),
        Method::Lomcds => flat_lomcds(flat, policy, pool),
        _ => flat_gomcds(flat, policy, pool),
    }
    .expect("policies chosen feasible")
}

const METHODS: [Method; 3] = [Method::Scds, Method::Lomcds, Method::Gomcds];

/// Feasible policy set for an instance: unbounded, the paper's scaled
/// minimum, and the tightest explicit capacity that still fits the data.
fn policies(inst: &Instance) -> [MemoryPolicy; 3] {
    let tight = (inst.num_data as u32).div_ceil(inst.grid.num_procs() as u32);
    [
        MemoryPolicy::Unbounded,
        MemoryPolicy::ScaledMinimum { factor: 2 },
        MemoryPolicy::Capacity(tight.max(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine tracks a from-scratch re-schedule bit for bit after
    /// every delta of a random edit sequence.
    #[test]
    fn incremental_tracks_scratch_after_every_delta(
        inst in arb_instance(),
        deltas in arb_deltas(),
    ) {
        for method in METHODS {
            for policy in policies(&inst) {
                let mut engine =
                    IncrementalRun::new(inst.flat(), method, policy, Pool::serial())
                        .expect("supported method");
                let mut num_windows = inst.num_windows;
                for raw in &deltas {
                    let delta = concretize(&inst, num_windows, raw);
                    num_windows += raw
                        .iter()
                        .filter(|op| matches!(op, RawOp::AppendWindow { .. }))
                        .count();
                    engine.incremental(&delta).expect("in-range delta");
                    let want = scratch(&engine.trace().materialize(), method, policy);
                    prop_assert_eq!(
                        engine.schedule(),
                        &want,
                        "{} diverged under {:?}",
                        method,
                        policy
                    );
                }
            }
        }
    }

    /// Degenerate deltas — empty delta, run removal, empty appended
    /// window — leave the engine in lockstep with scratch too.
    #[test]
    fn degenerate_deltas_hold_parity(inst in arb_instance()) {
        for method in METHODS {
            let policy = MemoryPolicy::Unbounded;
            let mut engine =
                IncrementalRun::new(inst.flat(), method, policy, Pool::serial())
                    .expect("supported method");
            let before = engine.schedule().clone();

            // Empty delta: no version bump, schedule untouched.
            let v = engine.version();
            engine.incremental(&TraceDelta::new()).unwrap();
            prop_assert_eq!(engine.version(), v);
            prop_assert_eq!(engine.schedule(), &before);

            // Remove datum 0's run in window 0, then append an empty window.
            let mut delta = TraceDelta::new();
            delta.remove_run(DataId(0), 0);
            delta.append_window([]);
            engine.incremental(&delta).unwrap();
            let want = scratch(&engine.trace().materialize(), method, policy);
            prop_assert_eq!(engine.schedule(), &want);
        }
    }
}
