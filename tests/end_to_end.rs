//! End-to-end pipeline: generate every paper benchmark, schedule it with
//! every method, and verify the structural invariants a downstream user
//! relies on.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::validate::validate_windowed;
use pim_workloads::{windowed, Benchmark};

const MEMORY: MemoryPolicy = MemoryPolicy::ScaledMinimum { factor: 2 };

#[test]
fn every_benchmark_schedules_under_every_method() {
    let grid = Grid::new(4, 4);
    for bench in Benchmark::paper_set() {
        let (trace, space) = windowed(bench, grid, 8, 2, 1998);
        validate_windowed(&trace).unwrap();
        let sf = space
            .straightforward(&trace, Layout::RowWise)
            .evaluate(&trace)
            .total();
        for method in Method::ALL {
            let s = schedule(method, &trace, MEMORY);
            assert_eq!(s.num_data(), trace.num_data(), "{bench} {method}");
            assert_eq!(s.num_windows(), trace.num_windows(), "{bench} {method}");
            let cost = s.evaluate(&trace);
            assert!(
                cost.total() <= sf,
                "{bench}/{method}: cost {} exceeds straightforward {sf}",
                cost.total()
            );
        }
    }
}

#[test]
fn multiple_center_methods_actually_move_data() {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::CodeReverse, grid, 16, 2, 1998);
    let scds = schedule(Method::Scds, &trace, MEMORY);
    assert!(!scds.has_movement(), "SCDS never moves");
    let gomcds = schedule(Method::Gomcds, &trace, MEMORY);
    assert!(
        gomcds.has_movement(),
        "GOMCDS should exploit movement on the drifting CODE benchmark"
    );
}

#[test]
fn costs_are_deterministic_across_runs() {
    let grid = Grid::new(4, 4);
    for _ in 0..2 {
        let (t1, _) = windowed(Benchmark::MatMulCode, grid, 8, 2, 7);
        let (t2, _) = windowed(Benchmark::MatMulCode, grid, 8, 2, 7);
        assert_eq!(t1, t2);
        let s1 = schedule(Method::Gomcds, &t1, MEMORY);
        let s2 = schedule(Method::Gomcds, &t2, MEMORY);
        assert_eq!(s1, s2);
    }
}

#[test]
fn larger_windows_never_break_scheduling() {
    let grid = Grid::new(4, 4);
    for steps in [1usize, 3, 10, 1000] {
        let (trace, _) = windowed(Benchmark::Lu, grid, 8, steps, 0);
        let s = schedule(Method::Gomcds, &trace, MEMORY);
        let cost = s.evaluate(&trace).total();
        assert!(cost > 0, "steps={steps}");
    }
    // one giant window: GOMCDS degenerates to SCDS
    let (trace, _) = windowed(Benchmark::Lu, grid, 8, 1000, 0);
    assert_eq!(trace.num_windows(), 1);
    assert_eq!(
        schedule(Method::Gomcds, &trace, MEMORY),
        schedule(Method::Scds, &trace, MEMORY)
    );
}

#[test]
fn non_square_grids_work() {
    for (w, h) in [(8, 2), (2, 8), (1, 16), (5, 3)] {
        let grid = Grid::new(w, h);
        let (trace, space) = windowed(Benchmark::Lu, grid, 8, 2, 0);
        let sf = space
            .straightforward(&trace, Layout::RowWise)
            .evaluate(&trace)
            .total();
        let go = schedule(Method::Gomcds, &trace, MEMORY)
            .evaluate(&trace)
            .total();
        assert!(go <= sf, "{w}x{h}: {go} > {sf}");
    }
}

#[test]
fn extra_benchmarks_round_trip() {
    let grid = Grid::new(4, 4);
    for bench in [Benchmark::Jacobi, Benchmark::Transpose, Benchmark::Sor] {
        let (trace, space) = windowed(bench, grid, 8, 2, 3);
        validate_windowed(&trace).unwrap();
        let sf = space
            .straightforward(&trace, Layout::RowWise)
            .evaluate(&trace)
            .total();
        let go = schedule(Method::Gomcds, &trace, MEMORY)
            .evaluate(&trace)
            .total();
        assert!(go <= sf, "{bench}");
    }
}
