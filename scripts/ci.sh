#!/usr/bin/env bash
# Tier-1 gate: what must stay green on every commit.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

# Benches must keep compiling even though CI never runs them.
echo "== cargo bench --no-run =="
cargo bench --no-run -q

# Deny broken intra-doc links in first-party crates. Scoped with -p: the
# vendored shims (vendor/proptest) carry upstream doc warnings we do not
# own and must not gate on.
echo "== cargo doc --no-deps (first-party, -D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p pim-array -p pim-trace -p pim-par -p pim-workloads \
  -p pim-sched -p pim-sim -p pim-cli -p pim-bench

echo "ci: all green"
