#!/usr/bin/env bash
# Tier-1 gate: what must stay green on every commit.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --doc -q =="
cargo test --doc -q

# Simulator oracle-equivalence proptests, in release so the corpus is
# cheap. The vendored proptest shim derives its RNG seed from the test
# name, so this run is deterministic — the "fixed seed" is built in.
echo "== cycle simulator proptests (release, fixed seed) =="
cargo test -q --release -p pim-tests-int --test cycle_props

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

# Benches must keep compiling even though CI never runs them.
echo "== cargo bench --no-run =="
cargo bench --no-run -q

# Deny broken intra-doc links in first-party crates. Scoped with -p: the
# vendored shims (vendor/proptest) carry upstream doc warnings we do not
# own and must not gate on.
echo "== cargo doc --no-deps (first-party, -D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p pim-array -p pim-trace -p pim-par -p pim-workloads \
  -p pim-sched -p pim-sim -p pim-serve -p pim-cli -p pim-bench

# Metrics export smoke: `--metrics` must emit JSON that parses and
# carries the three RunReport sections. Falls back to grep when no
# python3 is on the PATH.
echo "== --metrics smoke run =="
metrics_tmp="$(mktemp -d)"
trap 'rm -rf "$metrics_tmp"' EXIT
(cd "$metrics_tmp" && "$OLDPWD/target/release/pim-cli" \
  run --bench 3 --size 8 --method gomcds --metrics run_metrics.json)
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_tmp/run_metrics.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
for key in ("scheduler", "analytic", "sim", "cycle", "metrics"):
    assert key in report, f"missing {key!r} in RunReport"
assert report["metrics"]["enabled"] is True
assert report["analytic"]["total"] == report["sim"]["total_hop_volume"]
cycle = report["cycle"]
assert cycle["completion_cycles"] >= report["sim"]["completion_time"], \
    "simulated completion beat the analytic lower bound"
assert cycle["window_completion_cycles"], "no per-window completion cycles"
print("run_metrics.json: parses, all sections present")
PY
else
  for key in '"scheduler"' '"analytic"' '"sim"' '"cycle"' '"metrics"' '"enabled": true'; do
    grep -q "$key" "$metrics_tmp/run_metrics.json" \
      || { echo "run_metrics.json missing $key"; exit 1; }
  done
  echo "run_metrics.json: expected keys present (grep fallback)"
fi

# Cycle-bench artifact smoke: the committed BENCH_cycle.json (emitted by
# `report_all`) must parse, carry at least one row, and keep the speedup
# column; a speedup below 1 is reported but does not gate (timings are
# machine-dependent), mirroring report_all's own stderr warning.
echo "== BENCH_cycle.json smoke =="
if [ ! -f BENCH_cycle.json ]; then
  echo "BENCH_cycle.json missing — regenerate with: cargo run --release -p pim-bench --bin report_all"
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_cycle.json <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
rows = bench["rows"]
assert rows, "BENCH_cycle.json has no rows"
for row in rows:
    for key in ("grid", "oracle_ns", "event_ns", "speedup"):
        assert key in row, f"row missing {key!r}: {row}"
    if row["speedup"] < 1.0:
        print(f"warning: {row['grid']}: event-driven slower than oracle "
              f"(speedup {row['speedup']:.3f})", file=sys.stderr)
print(f"BENCH_cycle.json: parses, {len(rows)} rows, speedup column present")
PY
else
  for key in '"rows"' '"oracle_ns"' '"event_ns"' '"speedup"' '"grid"'; do
    grep -q "$key" BENCH_cycle.json \
      || { echo "BENCH_cycle.json missing $key"; exit 1; }
  done
  if grep -q '"speedup": 0\.' BENCH_cycle.json; then
    echo "warning: BENCH_cycle.json has a speedup < 1 row" >&2
  fi
  echo "BENCH_cycle.json: expected keys present (grep fallback)"
fi

# Scale-pipeline smoke: regenerate one small big-instance row (16×16,
# 50k data) and validate the BENCH_scale.json shape. Cost parity with the
# classic path is asserted inside scale_row itself — the binary exits
# non-zero on divergence; here we additionally check the speedup column
# made it into the JSON.
echo "== scale pipeline smoke (16x16 x 50k) =="
./target/release/report_scale --smoke --out "$metrics_tmp/scale_smoke.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_tmp/scale_smoke.json" <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
rows = bench["rows"]
assert rows, "scale smoke produced no rows"
for row in rows:
    for key in ("grid", "num_data", "num_refs", "build_ns", "methods", "peak_rss_kb"):
        assert key in row, f"row missing {key!r}: {row}"
    for m in row["methods"]:
        for key in ("method", "flat_ns", "total_cost"):
            assert key in m, f"method entry missing {key!r}: {m}"
        assert m["exact_cost"] == m["total_cost"], \
            f"{m['method']}: flat cost diverged from the exact path"
print(f"scale smoke: parses, {len(rows)} row(s), flat/exact cost parity holds")
PY
else
  for key in '"rows"' '"grid"' '"num_refs"' '"build_ns"' '"flat_ns"' \
             '"total_cost"' '"exact_cost"' '"speedup"'; do
    grep -q "$key" "$metrics_tmp/scale_smoke.json" \
      || { echo "scale_smoke.json missing $key"; exit 1; }
  done
  echo "scale smoke: expected keys present (grep fallback)"
fi

# Churn smoke: drive the incremental engine through 5 edit ticks on a
# 16×16 × 50k instance plus the tight-capacity fallback row, and validate
# the BENCH_churn.json shape. Bit-identical parity with the from-scratch
# path is asserted inside churn_row itself — the binary exits non-zero on
# divergence; here we additionally check the parity flags made it into
# the JSON and that the fallback row actually exercised the full-replay
# path (fallbacks > 0 somewhere). Speedups are reported, not gated —
# timings are machine-dependent.
echo "== churn smoke (16x16 x 50k, 5 ticks) =="
./target/release/report_churn --smoke --out "$metrics_tmp/churn_smoke.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_tmp/churn_smoke.json" <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
rows = bench["rows"]
assert rows, "churn smoke produced no rows"
for row in rows:
    for key in ("grid", "num_data", "method", "policy", "ticks",
                "dirty_per_tick", "mean_tick_ns", "mean_scratch_ns",
                "speedup", "fallbacks", "parity", "peak_rss_kb", "tick_ns"):
        assert key in row, f"row missing {key!r}: {row}"
    assert row["parity"] is True, f"{row['method']}/{row['policy']}: parity lost"
    assert len(row["tick_ns"]) == row["ticks"], "tick_ns length != ticks"
    if row["speedup"] < 1.0 and row["fallbacks"] == 0:
        print(f"warning: {row['method']}/{row['policy']}: incremental slower "
              f"than scratch (speedup {row['speedup']:.3f})", file=sys.stderr)
assert any(r["fallbacks"] > 0 for r in rows), \
    "no row exercised the full-replay fallback path"
print(f"churn smoke: parses, {len(rows)} rows, parity holds, fallback path hit")
PY
else
  for key in '"rows"' '"mean_tick_ns"' '"mean_scratch_ns"' '"speedup"' \
             '"fallbacks"' '"parity": true'; do
    grep -q "$key" "$metrics_tmp/churn_smoke.json" \
      || { echo "churn_smoke.json missing $key"; exit 1; }
  done
  echo "churn smoke: expected keys present (grep fallback)"
fi

# DAG smoke: precedence-gated run on the Cholesky natural chain under
# minimum-capacity memory (the regime BENCH_dag.json benchmarks). The
# aware schedule (list-scds) must complete no later than the precedence-
# oblivious GOMCDS schedule under the same gated simulator, and the
# metrics JSON must carry the "dag" section with a per-window breakdown.
echo "== --dag smoke run (Cholesky natural chain) =="
(cd "$metrics_tmp" && "$OLDPWD/target/release/pim-cli" \
  run --bench cholesky --size 16 --window 2 --memory 1x --method list-scds \
  --dag natural --metrics dag_aware.json)
(cd "$metrics_tmp" && "$OLDPWD/target/release/pim-cli" \
  run --bench cholesky --size 16 --window 2 --memory 1x --method gomcds \
  --dag natural --metrics dag_oblivious.json)
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_tmp/dag_aware.json" "$metrics_tmp/dag_oblivious.json" <<'PY'
import json, sys
aware = json.load(open(sys.argv[1]))
oblivious = json.load(open(sys.argv[2]))
for name, report in (("aware", aware), ("oblivious", oblivious)):
    assert "dag" in report, f"{name}: missing 'dag' section in RunReport"
    dag = report["dag"]
    assert dag["window_completion_cycles"], f"{name}: no per-window dag cycles"
    assert dag["completion_cycles"] == sum(dag["window_completion_cycles"]), \
        f"{name}: dag completion is not the sum of its windows"
    assert dag["completion_cycles"] >= report["cycle"]["completion_cycles"], \
        f"{name}: gated release beat the ungated run"
a, o = aware["dag"]["completion_cycles"], oblivious["dag"]["completion_cycles"]
assert a <= o, \
    f"precedence-aware completion {a} exceeds the oblivious baseline {o}"
print(f"dag smoke: aware {a} <= oblivious {o} gated cycles, dag section present")
PY
else
  for f in dag_aware.json dag_oblivious.json; do
    grep -q '"dag":{"completion_cycles":' "$metrics_tmp/$f" \
      || { echo "$f missing the dag section"; exit 1; }
  done
  echo "dag smoke: dag sections present (grep fallback)"
fi

# Serve smoke: drive one request of each op through the daemon's stdio
# transport (the same submit/worker path the socket transports use) and
# validate the responses; then run the serve load harness's smoke mode
# and validate the BENCH_serve.json shape — including that the burst
# actually shed load as typed overloaded rejections.
echo "== serve smoke (stdio, one request of each op) =="
serve_trace='flat v1 4 4 2 3\n0 0 1 3\n0 1 5 2\n1 0 9 4\n1 1 2 1\n2 0 7 2\n2 1 12 6\n'
{
  printf '{"id":1,"op":"load","text":"%s"}\n' "$serve_trace"
  printf '{"id":2,"op":"stats"}\n'
  printf '{"id":3,"op":"ping"}\n'
  printf 'not json at all\n'
} > "$metrics_tmp/serve_in_1.txt"
./target/release/pim-cli serve --serve-workers 1 < "$metrics_tmp/serve_in_1.txt" \
  > "$metrics_tmp/serve_out_1.txt"
serve_key="$(sed -n 's/.*"trace":"\([0-9a-f]\{16\}\)".*/\1/p' \
  "$metrics_tmp/serve_out_1.txt" | head -n 1)"
[ -n "$serve_key" ] || { echo "serve smoke: load returned no trace key"; exit 1; }
{
  printf '{"id":1,"op":"load","text":"%s"}\n' "$serve_trace"
  printf '{"id":2,"op":"schedule","trace":"%s","method":"scds"}\n' "$serve_key"
  printf '{"id":3,"op":"simulate","trace":"%s"}\n' "$serve_key"
  printf '{"id":4,"op":"edit","trace":"%s","delta":{"version":1,"ops":[{"op":"set_run","datum":0,"window":1,"refs":[[3,2]]}]}}\n' "$serve_key"
  printf '{"id":5,"op":"schedule","trace":"%s","method":"scds"}\n' "$serve_key"
  printf '{"id":6,"op":"evict","trace":"%s","scope":"engine"}\n' "$serve_key"
  printf '{"id":7,"op":"stats"}\n'
  printf '{"id":8,"op":"shutdown"}\n'
} > "$metrics_tmp/serve_in_2.txt"
./target/release/pim-cli serve --serve-workers 1 < "$metrics_tmp/serve_in_2.txt" \
  > "$metrics_tmp/serve_out_2.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_tmp/serve_out_1.txt" "$metrics_tmp/serve_out_2.txt" <<'PY'
import json, sys
probe = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert probe[0]["ok"] and probe[0]["fresh"], "load failed"
assert probe[1]["ok"] and "server" in probe[1] and "store" in probe[1], "stats shape"
assert probe[2]["ok"] and probe[2].get("pong"), "ping failed"
assert not probe[3]["ok"] and probe[3]["error"] == "bad_request", \
    "malformed line did not get a typed bad_request"
session = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
ops = ["load", "schedule", "simulate", "edit", "schedule", "evict", "stats", "shutdown"]
assert len(session) == len(ops), f"expected {len(ops)} responses, got {len(session)}"
for i, (resp, op) in enumerate(zip(session, ops)):
    assert resp["ok"], f"op {op} (response {i+1}) failed: {resp}"
assert session[1]["warm"] is False and session[4]["warm"] is True, \
    "second schedule after edit should be the warm path"
assert session[3]["version"] == 1, "edit did not bump the version"
assert session[1]["cost"]["total"] == \
    session[1]["cost"]["reference"] + session[1]["cost"]["movement"]
stats = session[6]["server"]
assert stats["requests"]["schedule"] == 2 and stats["engine_builds"] >= 1
print("serve smoke: all ops answered, warm path hit, stats consistent")
PY
else
  grep -q '"ok":true' "$metrics_tmp/serve_out_2.txt" \
    || { echo "serve smoke: no ok responses"; exit 1; }
  grep -q '"error":"bad_request"' "$metrics_tmp/serve_out_1.txt" \
    || { echo "serve smoke: malformed line not rejected"; exit 1; }
  echo "serve smoke: expected markers present (grep fallback)"
fi

echo "== serve load smoke (report_serve --smoke) =="
./target/release/report_serve --smoke --out "$metrics_tmp/serve_smoke.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_tmp/serve_smoke.json" <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
rows = bench["rows"]
assert rows, "serve smoke produced no rows"
for row in rows:
    for key in ("grid", "num_data", "mode", "concurrency", "requests", "ok",
                "overloaded", "errors", "elapsed_ns", "throughput_rps",
                "p50_us", "p90_us", "p99_us", "max_us"):
        assert key in row, f"row missing {key!r}: {row}"
    assert row["errors"] == 0, f"serve row had hard errors: {row}"
modes = {row["mode"] for row in rows}
assert {"warm", "churn", "cold"} <= modes, f"missing modes: {modes}"
burst = bench["burst"]
assert burst["overloaded"] > 0, "burst produced no overload rejections"
assert burst["ok"] + burst["overloaded"] + burst["errors"] == burst["requests"], \
    "burst dropped requests"
print(f"serve smoke: {len(rows)} rows, burst shed "
      f"{burst['overloaded']}/{burst['requests']} requests")
PY
else
  for key in '"rows"' '"throughput_rps"' '"p99_us"' '"burst"' '"overloaded"'; do
    grep -q "$key" "$metrics_tmp/serve_smoke.json" \
      || { echo "serve_smoke.json missing $key"; exit 1; }
  done
  echo "serve load smoke: expected keys present (grep fallback)"
fi

# Streaming smoke: pack a 16×16 × 50k synthetic instance to the binary
# container, schedule it memory-mapped (`run --bin`) and through the
# out-of-core streaming pipeline (`scale --bin` — same synthetic
# generator, same seed), and assert the two total costs agree. Then run
# the stream report's smoke mode (which isolates each phase in a child
# process and asserts stream/in-memory cost parity itself) and validate
# the BENCH_stream.json shape. RSS ratios and load speedups are
# reported, not gated, at smoke scale — fixed overheads dominate 50k
# data; the committed full-scale BENCH_stream.json carries the bounds.
echo "== streaming smoke (pack / run --bin / scale --bin, 16x16 x 50k) =="
./target/release/pim-cli pack --grid 16x16 --data 50000 \
  --out "$metrics_tmp/stream_smoke.pimb"
./target/release/pim-cli run --bin --trace "$metrics_tmp/stream_smoke.pimb" \
  --method scds > "$metrics_tmp/stream_mmap.txt"
./target/release/pim-cli scale --grid 16x16 --data 50000 --method scds --bin \
  > "$metrics_tmp/stream_stream.txt"
grep -q "memory-mapped" "$metrics_tmp/stream_mmap.txt" \
  || { echo "run --bin did not memory-map the container"; exit 1; }
mmap_cost="$(sed -n 's/.*: total \([0-9]*\) (reference.*/\1/p' \
  "$metrics_tmp/stream_mmap.txt" | head -n 1)"
stream_cost="$(sed -n 's/.*: total \([0-9]*\) (reference.*/\1/p' \
  "$metrics_tmp/stream_stream.txt" | head -n 1)"
[ -n "$mmap_cost" ] && [ -n "$stream_cost" ] \
  || { echo "streaming smoke: could not extract total costs"; exit 1; }
[ "$mmap_cost" = "$stream_cost" ] \
  || { echo "streaming smoke: mmap cost $mmap_cost != streamed cost $stream_cost"; exit 1; }
./target/release/pim-cli unpack --trace "$metrics_tmp/stream_smoke.pimb" \
  --out "$metrics_tmp/stream_smoke.txt"
grep -q "^flat v1 16 16 " "$metrics_tmp/stream_smoke.txt" \
  || { echo "unpack did not produce a flat text header"; exit 1; }

echo "== stream report smoke (report_stream --smoke) =="
./target/release/report_stream --smoke --out "$metrics_tmp/stream_smoke.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_tmp/stream_smoke.json" <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("config", "instance", "load", "rows"):
    assert key in bench, f"missing {key!r} in BENCH_stream"
assert bench["load"]["speedup"] > 1.0, "binary load not faster than text parse"
rows = bench["rows"]
assert {r["method"] for r in rows} == {"scds", "lomcds"}, "missing a method row"
for row in rows:
    for key in ("method", "stream_ns", "stream_cost", "stream_peak_rss_kb",
                "num_chunks", "inmem_ns", "inmem_cost", "inmem_peak_rss_kb",
                "rss_ratio", "parity"):
        assert key in row, f"row missing {key!r}: {row}"
    assert row["parity"] is True, f"{row['method']}: streamed cost diverged"
    assert row["num_chunks"] > 1, f"{row['method']}: smoke run was single-chunk"
    if row["rss_ratio"] > 1.0:
        print(f"warning: {row['method']}: streaming peak RSS above in-memory "
              f"(ratio {row['rss_ratio']:.2f})", file=sys.stderr)
print(f"stream smoke: parses, {len(rows)} rows, parity holds, "
      f"load speedup {bench['load']['speedup']:.1f}x")
PY
else
  for key in '"rows"' '"stream_cost"' '"inmem_cost"' '"rss_ratio"' \
             '"parity": true' '"speedup"'; do
    grep -q "$key" "$metrics_tmp/stream_smoke.json" \
      || { echo "stream_smoke.json missing $key"; exit 1; }
  done
  echo "stream smoke: expected keys present (grep fallback)"
fi

echo "ci: all green"
