#!/usr/bin/env bash
# Tier-1 gate: what must stay green on every commit.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --doc -q =="
cargo test --doc -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

# Benches must keep compiling even though CI never runs them.
echo "== cargo bench --no-run =="
cargo bench --no-run -q

# Deny broken intra-doc links in first-party crates. Scoped with -p: the
# vendored shims (vendor/proptest) carry upstream doc warnings we do not
# own and must not gate on.
echo "== cargo doc --no-deps (first-party, -D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p pim-array -p pim-trace -p pim-par -p pim-workloads \
  -p pim-sched -p pim-sim -p pim-cli -p pim-bench

# Metrics export smoke: `--metrics` must emit JSON that parses and
# carries the three RunReport sections. Falls back to grep when no
# python3 is on the PATH.
echo "== --metrics smoke run =="
metrics_tmp="$(mktemp -d)"
trap 'rm -rf "$metrics_tmp"' EXIT
(cd "$metrics_tmp" && "$OLDPWD/target/release/pim-cli" \
  run --bench 3 --size 8 --method gomcds --metrics run_metrics.json)
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_tmp/run_metrics.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
for key in ("scheduler", "analytic", "sim", "metrics"):
    assert key in report, f"missing {key!r} in RunReport"
assert report["metrics"]["enabled"] is True
assert report["analytic"]["total"] == report["sim"]["total_hop_volume"]
print("run_metrics.json: parses, all sections present")
PY
else
  for key in '"scheduler"' '"analytic"' '"sim"' '"metrics"' '"enabled": true'; do
    grep -q "$key" "$metrics_tmp/run_metrics.json" \
      || { echo "run_metrics.json missing $key"; exit 1; }
  done
  echo "run_metrics.json: expected keys present (grep fallback)"
fi

echo "ci: all green"
