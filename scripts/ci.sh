#!/usr/bin/env bash
# Tier-1 gate: what must stay green on every commit.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "ci: all green"
