//! Test-runner support types: the case RNG and the soft-failure error.

use rand::rngs::StdRng;

/// Deterministic RNG driving strategy generation for one test.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

/// A failed property case (what `prop_assert*` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with an explanatory message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
