//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use core::ops::{Range, RangeInclusive};
use rand::Rng;

/// Acceptable size arguments for [`vec`]: `lo..hi` or `lo..=hi`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// is uniform in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
