//! Offline shim for `proptest`: seeded random property testing with the
//! combinator subset this workspace uses (`proptest!`, `prop_assert*`,
//! `Strategy::{prop_map, prop_flat_map}`, `Just`, range and tuple
//! strategies, `collection::vec`, `ProptestConfig::with_cases`).
//!
//! Differences from crates.io proptest: no shrinking (a failing case
//! reports its values via the assertion message and the deterministic
//! per-test seed reproduces it), and strategies are sampled with a simple
//! seeded SplitMix64 stream. See `vendor/README.md`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod test_runner;

pub use test_runner::{TestCaseError, TestRng};

/// Number of cases run per property when no `proptest_config` is given.
pub const DEFAULT_CASES: u32 = 64;

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// A generator of random values. Unlike upstream there is no value tree or
/// shrinking: `generate` draws one concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// [`prop_oneof!`]. (Crates.io proptest supports per-arm weights; this shim
/// samples arms uniformly, which the workspace's generators don't rely on.)
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the macro's collected arms.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Pick one of several strategies per generated value
/// (`proptest::prop_oneof!`, uniform weights only).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Deterministic RNG wrapper passed to [`Strategy::generate`].
impl TestRng {
    /// Seed from a test name: equal names replay identical case streams.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }
}

/// The `proptest!` macro: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` random cases. The body may use
/// `prop_assert*` (soft failures reported with the case's values) and
/// `return Ok(())` for early exits.
#[macro_export]
macro_rules! proptest {
    (@cases $cases:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cases: u32 = $cases;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name), case + 1, cases, e
                    );
                }
            }
        }
    )*};
    // With a leading #![proptest_config(...)]
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    // Without config: default case count
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::DEFAULT_CASES; $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("{} != {}: {:?} vs {:?}", stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} != {}: {:?} vs {:?} ({})",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+),
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format args.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} == {}: both {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn map_and_flat_map_compose(v in (1u32..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, (n as usize)..=(n as usize))
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_cases_respected(x in 0u32..100) {
            // 7 cases of a trivially-true property
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = crate::TestRng::deterministic("some::test");
        let mut b = crate::TestRng::deterministic("some::test");
        let s = 0u32..1000;
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
