//! No-op derive macros for the `serde` shim: each emits an empty marker
//! impl for the deriving type. Only non-generic `struct`/`enum` items are
//! supported — which covers every derive site in this workspace (the types
//! are all plain data carriers).

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive shim: could not find a struct/enum name");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
