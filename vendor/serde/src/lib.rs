//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything (there is no `serde_json`/`bincode` in the
//! tree — the binary trace codec in `pim-trace` is hand-rolled). The
//! traits are therefore pure markers, and the derive macros emit empty
//! impls. See `vendor/README.md`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
