//! Offline shim for `bytes`: reference-counted immutable [`Bytes`], a
//! growable [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits — just
//! the little-endian subset the `pim-trace` binary codec uses. See
//! `vendor/README.md`.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Shared `Debug` body: print as a byte list like upstream `bytes`.
macro_rules! fmt_as_byte_list {
    () => {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "b\"")?;
            for &b in self.iter() {
                if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// Read cursor over a byte source. Reading advances the view.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read a little-endian `u32`.
    ///
    /// # Panics
    /// Panics when fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Fill `dst` from the front of the buffer.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, n: usize) {
        (**self).advance(n)
    }
}

/// Append-only write access.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Cheaply cloneable immutable byte buffer (a shared `Arc<[u8]>` view).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the view.
    #[allow(clippy::len_without_is_empty)] // mirrors the upstream surface we use
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range exceeds the view.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl core::fmt::Debug for Bytes {
    fmt_as_byte_list!();
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Growable byte buffer with a read cursor, convertible into [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length.
    #[allow(clippy::len_without_is_empty)] // mirrors the upstream surface we use
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// Freeze the unread contents into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.data.drain(..self.read);
        }
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            read: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.read..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.read..]
    }
}

impl core::fmt::Debug for BytesMut {
    fmt_as_byte_list!();
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.read += n;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32s() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"PIMT");
        b.put_u32_le(0xDEADBEEF);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        let mut magic = [0u8; 4];
        frozen.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"PIMT");
        assert_eq!(frozen.get_u32_le(), 0xDEADBEEF);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_and_eq() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = a.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(a.clone(), a);
    }

    #[test]
    fn bytes_mut_indexing() {
        let mut m = BytesMut::from(&b"hello"[..]);
        m[0] = b'j';
        assert_eq!(&m.freeze()[..], b"jello");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.get_u32_le();
    }
}
