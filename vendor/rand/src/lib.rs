//! Offline shim for `rand`: a deterministic SplitMix64 generator behind the
//! subset of the `rand 0.8` API this workspace uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and `f64`
//! ranges). Not bit-compatible with crates.io `rand` — equal seeds give
//! identical streams *of this shim*, which is all the workload generators
//! require. See `vendor/README.md`.

use core::ops::{Range, RangeInclusive};

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generation plus the range sampling front end.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from a range (modulo-bias is acceptable for this
    /// shim's synthetic-workload use).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled by an [`Rng`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // full-width inclusive range: any value is uniform
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1)
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// RNG namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (the stand-in for `rand`'s
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — full-period, passes
            // BigCrush; more than enough for synthetic trace generation.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = r.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = r.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&f));
        }
    }
}
