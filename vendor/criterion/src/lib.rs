//! Offline shim for `criterion`: same macro + builder surface
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! backed by a plain wall-clock sampler instead of the full statistical
//! engine. Results print as `group/id  time: [min mean max]` lines. See
//! `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per sample; iteration counts adapt to hit it.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Benchmark driver handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for `criterion_main!` parity; CLI filters are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Run a benchmark against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// End the group (accepted for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timer handed to the measured closure; collects per-iteration samples.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time `routine`, adapting the per-sample iteration count so each
    /// sample runs long enough for the clock to resolve.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration time.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("{group}/{id}  (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        eprintln!("{group}/{id}  time: [{min:.2?} {mean:.2?} {max:.2?}]");
    }
}

/// Bundle bench functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(2u64 + 2)
            })
        });
        group.bench_with_input(BenchmarkId::new("mul", 8), &8u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("naive", 32).to_string(), "naive/32");
        assert_eq!(BenchmarkId::from_parameter("b3").to_string(), "b3");
    }
}
