//! Quickstart: build a tiny reference trace by hand, schedule it three
//! ways, and compare the total communication cost.
//!
//! ```text
//! cargo run --release -p pim-cli --example quickstart
//! ```

use pim_array::grid::Grid;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::builder::TraceBuilder;
use pim_trace::ids::DataId;

fn main() {
    // A 4×4 PIM array — the machine of the paper's experiments.
    let grid = Grid::new(4, 4);

    // One datum, referenced first by the top-left corner, then (heavily)
    // by the bottom-right corner.
    let mut b = TraceBuilder::new(grid, 1);
    b.step().access_n(grid.proc_xy(0, 0), DataId(0), 2);
    b.step().access_n(grid.proc_xy(3, 3), DataId(0), 5);
    b.step().access_n(grid.proc_xy(3, 3), DataId(0), 5);
    let trace = b.finish().window_fixed(1); // one step per execution window

    println!("one datum, three windows: refs 2@(0,0), then 5@(3,3) twice\n");
    for method in [Method::Scds, Method::Lomcds, Method::Gomcds] {
        let s = schedule(method, &trace, MemoryPolicy::Unbounded);
        let centers: Vec<String> = (0..trace.num_windows())
            .map(|w| {
                let p = grid.point_of(s.center(DataId(0), w));
                format!("({},{})", p.x, p.y)
            })
            .collect();
        let cost = s.evaluate(&trace);
        println!(
            "{:<8} centers {:<22} cost {} (ref {}, move {})",
            method.name(),
            centers.join(" "),
            cost.total(),
            cost.reference,
            cost.movement
        );
    }

    println!(
        "\nSCDS parks the datum at the weighted median; GOMCDS pays one move\n\
         up front to sit on the hot corner for the heavy windows."
    );
}
