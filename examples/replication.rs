//! Read replication: lifting the paper's one-copy restriction.
//!
//! Shows where a second copy pays: data referenced simultaneously from
//! distant parts of the array. Compares single-copy GOMCDS against the
//! two-copy extension on the CODE combination benchmarks and prints which
//! data earned a secondary copy.
//!
//! ```text
//! cargo run --release -p pim-cli --example replication
//! ```

use pim_array::grid::Grid;
use pim_sched::replicate::replicated_schedule;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::ids::DataId;
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;

    println!("Two-copy replication vs single-copy GOMCDS ({n}x{n} data, {grid})\n");
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>13}",
        "benchmark", "1-copy", "2-copy", "gain", "secondaries"
    );

    for bench in [
        Benchmark::MatMul,
        Benchmark::LuCode,
        Benchmark::MatMulCode,
        Benchmark::CodeReverse,
    ] {
        let (trace, _) = windowed(bench, grid, n, 2, 1998);
        let policy = MemoryPolicy::ScaledMinimum { factor: 2 };
        let spec = policy.resolve(&trace);
        let single = schedule(Method::Gomcds, &trace, policy)
            .evaluate(&trace)
            .total();
        let repl = replicated_schedule(&trace, spec);
        let dual = repl.evaluate(&trace).total();
        println!(
            "{:<22} {:>10} {:>10} {:>7.1}% {:>13}",
            bench.name(),
            single,
            dual,
            (single as f64 - dual as f64) / single as f64 * 100.0,
            repl.secondary_slots()
        );
    }

    // Inspect a single datum with a genuinely split audience.
    let (trace, _) = windowed(Benchmark::MatMul, grid, n, 2, 1998);
    let spec = MemoryPolicy::ScaledMinimum { factor: 2 }.resolve(&trace);
    let repl = replicated_schedule(&trace, spec);
    println!("\nexample replica placements (first window, first data with a secondary):");
    let mut shown = 0;
    for d in 0..trace.num_data() {
        let (p, s) = repl.replicas_of(DataId(d as u32), 0);
        if let Some(s) = s {
            let pp = grid.point_of(p);
            let sp = grid.point_of(s);
            println!(
                "  D{d}: primary ({},{}) secondary ({},{})",
                pp.x, pp.y, sp.x, sp.y
            );
            shown += 1;
            if shown == 5 {
                break;
            }
        }
    }
    println!(
        "\nMatrix rows and columns are read by whole processor rows/columns\n\
         at once — exactly the split audience a second copy serves."
    );
}
