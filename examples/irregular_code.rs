//! The irregular CODE kernel — where movement-aware scheduling shines.
//!
//! The paper observes that "considering the data movement can be more
//! effective especially for the benchmarks with complicate data reference
//! patterns". This example generates the synthetic CODE kernel (drifting
//! hot spots, no loop-index structure), prints its locality statistics,
//! and contrasts the schedulers on it and on its combination benchmarks
//! (3, 4 and 5).
//!
//! ```text
//! cargo run --release -p pim-cli --example irregular_code
//! ```

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::schedule::improvement_pct;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::stats::{hottest_data, trace_stats};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };

    let (code, _) = windowed(Benchmark::Code, grid, n, 2, 1998);
    let st = trace_stats(&code);
    println!("synthetic CODE kernel, {n}x{n} data on {grid}:");
    println!(
        "  {} windows, volume {}, spread {:.2}, drift {:.2} hops/window",
        st.num_windows, st.total_volume, st.mean_spread, st.mean_drift
    );
    if let Some((d, v)) = hottest_data(&code) {
        println!("  hottest datum {d}: {v} references (mean {:.1})", {
            st.total_volume as f64 / st.num_data as f64
        });
    }
    println!();

    println!(
        "{:<22} {:>10} {:>9} {:>9} {:>9}",
        "benchmark", "S.F.", "SCDS", "LOMCDS", "GOMCDS"
    );
    for bench in [
        Benchmark::Code,
        Benchmark::LuCode,
        Benchmark::MatMulCode,
        Benchmark::CodeReverse,
    ] {
        let (trace, space) = windowed(bench, grid, n, 2, 1998);
        let sf = space
            .straightforward(&trace, Layout::RowWise)
            .evaluate(&trace)
            .total();
        let pct = |m| improvement_pct(sf, schedule(m, &trace, memory).evaluate(&trace).total());
        println!(
            "{:<22} {:>10} {:>8.1}% {:>8.1}% {:>8.1}%",
            bench.name(),
            sf,
            pct(Method::Scds),
            pct(Method::Lomcds),
            pct(Method::Gomcds)
        );
    }

    println!(
        "\nThe drifting hot set defeats any static placement: GOMCDS's edge\n\
         over SCDS is widest on exactly these irregular traces."
    );
}
