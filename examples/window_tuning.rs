//! Execution-window tuning and Algorithm 3 grouping.
//!
//! Section 4 of the paper: window size trades reference locality against
//! movement overhead, and the greedy grouping algorithm adapts the window
//! structure per datum. This example sweeps the raw window size on one
//! benchmark and then shows what grouping recovers at the finest setting.
//!
//! ```text
//! cargo run --release -p pim-cli --example window_tuning
//! ```

use pim_array::grid::Grid;
use pim_sched::grouping::{greedy_grouping, GroupMethod};
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::ids::DataId;
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };

    println!("CODE+reverse (benchmark 5), {n}x{n} data on {grid}\n");
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>10}",
        "steps/win", "windows", "LOMCDS", "GOMCDS", "Grouped"
    );
    for steps in [1usize, 2, 4, 8, 16] {
        let (trace, _) = windowed(Benchmark::CodeReverse, grid, n, steps, 1998);
        let cost = |m| schedule(m, &trace, memory).evaluate(&trace).total();
        println!(
            "{:>10} {:>8} {:>10} {:>10} {:>10}",
            steps,
            trace.num_windows(),
            cost(Method::Lomcds),
            cost(Method::Gomcds),
            cost(Method::GroupedLocal),
        );
    }

    // Peek at the grouping decisions for a few data at the finest windows.
    let (trace, _) = windowed(Benchmark::CodeReverse, grid, n, 1, 1998);
    println!(
        "\nAlgorithm 3 group boundaries at 1 step/window ({} windows):",
        trace.num_windows()
    );
    let mut shown = 0;
    for d in 0..trace.num_data() {
        let rs = trace.refs(DataId(d as u32));
        if rs.total_volume() == 0 {
            continue;
        }
        let groups = greedy_grouping(&grid, rs, GroupMethod::LocalCenters);
        if groups.len() > 1 && groups.len() < trace.num_windows() {
            let pretty: Vec<String> = groups
                .iter()
                .map(|g| format!("{}..{}", g.start, g.end))
                .collect();
            println!("  D{d}: {} groups: {}", groups.len(), pretty.join(" "));
            shown += 1;
            if shown == 5 {
                break;
            }
        }
    }
    println!(
        "\nGrouping merges windows whose hot sets coincide, eliminating\n\
         ping-pong moves without giving up adaptivity."
    );
}
