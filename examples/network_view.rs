//! Network view: route every transfer hop by hop and inspect what the
//! mesh actually carries under each scheduler.
//!
//! Demonstrates `pim-sim`: the simulated hop-volume must equal the
//! analytic cost (asserted), and the per-link statistics show that the
//! schedulers don't just shrink traffic — they also relieve the hottest
//! link and the idealized completion-time bound.
//!
//! ```text
//! cargo run --release -p pim-cli --example network_view
//! ```

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_par::Pool;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let (trace, space) = windowed(Benchmark::MatMulCode, grid, n, 2, 1998);
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };

    println!("matmul+CODE (benchmark 4), {n}x{n} data on {grid}\n");
    println!(
        "{:<16} {:>11} {:>12} {:>11} {:>11} {:>10}",
        "schedule", "hop-volume", "hottest link", "T (bound)", "T (cycles)", "imbalance"
    );

    let baseline = space.straightforward(&trace, Layout::RowWise);
    let mut rows = vec![("row-wise (S.F.)".to_string(), baseline)];
    for method in [Method::Scds, Method::Lomcds, Method::Gomcds] {
        rows.push((method.name().to_string(), schedule(method, &trace, memory)));
    }

    for (name, sched) in rows {
        let report = pim_sim::simulate(&trace, &sched, Pool::auto());
        let analytic = sched.evaluate(&trace).total();
        assert_eq!(
            report.total_hop_volume(),
            analytic,
            "simulator must agree with the analytic model"
        );
        let hottest = report
            .hottest_link()
            .map(|(_, v)| v.to_string())
            .unwrap_or_else(|| "-".into());
        let cycles: u64 = pim_sim::cycle::simulate_cycles(&trace, &sched, Pool::auto())
            .expect("benchmark windows fit the safety valve")
            .iter()
            .map(|r| r.completion_cycle)
            .sum();
        assert!(
            cycles >= report.total_completion_time(),
            "clocked time must respect the lower bound"
        );
        println!(
            "{:<16} {:>11} {:>12} {:>11} {:>11} {:>9.2}x",
            name,
            report.total_hop_volume(),
            hottest,
            report.total_completion_time(),
            cycles,
            report.link_imbalance()
        );
    }

    println!(
        "\nEvery row's hop-volume equals the analytic Manhattan-distance cost\n\
         — the simulator cross-checks the paper's cost model end to end."
    );
}
