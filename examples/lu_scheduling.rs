//! LU factorization — the paper's benchmark 1, end to end.
//!
//! Generates the LU reference trace on a 4×4 array, runs the straight-
//! forward row-wise baseline and every scheduler, and shows how the
//! shrinking active region of LU rewards data movement.
//!
//! ```text
//! cargo run --release -p pim-cli --example lu_scheduling
//! ```

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::schedule::improvement_pct;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::stats::trace_stats;
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let (trace, space) = windowed(Benchmark::Lu, grid, n, 2, 0);

    let stats = trace_stats(&trace);
    println!("LU factorization of a {n}x{n} matrix on a {grid}");
    println!(
        "{} data, {} windows, {} references, hot-set drift {:.2} hops/window\n",
        stats.num_data, stats.num_windows, stats.total_volume, stats.mean_drift
    );

    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let sf = space
        .straightforward(&trace, Layout::RowWise)
        .evaluate(&trace)
        .total();
    println!("{:<16} {:>10} {:>8}", "placement", "comm", "gain");
    println!("{:<16} {:>10} {:>8}", "row-wise (S.F.)", sf, "-");

    // Also show the other static layouts for context.
    for layout in [Layout::ColumnWise, Layout::Block2D, Layout::Cyclic] {
        let cost = space
            .straightforward(&trace, layout)
            .evaluate(&trace)
            .total();
        println!(
            "{:<16} {:>10} {:>7.1}%",
            layout.name(),
            cost,
            improvement_pct(sf, cost)
        );
    }
    for method in [
        Method::Scds,
        Method::Lomcds,
        Method::Gomcds,
        Method::GroupedLocal,
    ] {
        let s = schedule(method, &trace, memory);
        let cost = s.evaluate(&trace);
        println!(
            "{:<16} {:>10} {:>7.1}%   ({} moves)",
            method.name(),
            cost.total(),
            improvement_pct(sf, cost.total()),
            s.num_moves()
        );
    }

    println!(
        "\nAs elimination proceeds the active submatrix shrinks toward one\n\
         corner; the multiple-center schedules follow it, the static ones\n\
         keep paying full-distance fetches."
    );
}
